package obs

import (
	"context"
	"math"
	"testing"
	"time"

	"ml4all/internal/engine"
	"ml4all/internal/estimator"
)

func TestRingRecordsAndCurve(t *testing.T) {
	r := NewRing(16)
	deltas := []float64{0.5, 0.8, 0.25, 0.25, 0.125, 0.0625}
	for i, d := range deltas {
		r.ObserveIter(engine.IterEvent{Iter: i + 1, Delta: d, SimSeconds: float64(i), Units: int64(i * 100)})
	}
	if r.Count() != len(deltas) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(deltas))
	}
	evs := r.Events()
	if len(evs) != len(deltas) {
		t.Fatalf("Events returned %d records, want %d", len(evs), len(deltas))
	}
	for i, ev := range evs {
		if ev.Iter != i+1 || ev.Delta != deltas[i] {
			t.Fatalf("event %d = {Iter %d, Delta %g}, want {%d, %g}", i, ev.Iter, ev.Delta, i+1, deltas[i])
		}
	}
	// The curve keeps only strict improvements: 0.8 (regression) and the
	// repeated 0.25 must drop out, what remains must be strictly decreasing.
	curve := r.Curve()
	want := []estimator.Point{{Iter: 1, Err: 0.5}, {Iter: 3, Err: 0.25}, {Iter: 5, Err: 0.125}, {Iter: 6, Err: 0.0625}}
	if len(curve) != len(want) {
		t.Fatalf("curve has %d points, want %d: %v", len(curve), len(want), curve)
	}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve[%d] = %+v, want %+v", i, curve[i], want[i])
		}
	}
	if r.WallSeconds() < 0 {
		t.Fatalf("negative wall time %g", r.WallSeconds())
	}
}

func TestRingIgnoresNonPositiveDeltasInCurve(t *testing.T) {
	r := NewRing(8)
	for i, d := range []float64{math.Inf(1), 0, -1, math.NaN(), 0.5} {
		r.ObserveIter(engine.IterEvent{Iter: i + 1, Delta: d})
	}
	curve := r.Curve()
	if len(curve) != 1 || curve[0].Err != 0.5 {
		t.Fatalf("curve = %v, want the single finite positive delta", curve)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.ObserveIter(engine.IterEvent{Iter: i, Delta: 1 / float64(i)})
	}
	if r.Count() != 10 {
		t.Fatalf("Count = %d, want 10", r.Count())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Iter != 7+i {
			t.Fatalf("event %d has Iter %d, want %d (chronological tail)", i, ev.Iter, 7+i)
		}
	}
	// Eviction must not truncate the curve: it spans the whole run.
	if curve := r.Curve(); len(curve) != 10 {
		t.Fatalf("curve has %d points, want 10", len(curve))
	}
}

func TestCurveETA(t *testing.T) {
	// Synthesize an exact T(ε) = a/ε run: after iteration i the error is a/i.
	const a = 200.0
	var curve []estimator.Point
	for i := 1; i <= 40; i++ {
		curve = append(curve, estimator.Point{Iter: i, Err: a / float64(i)})
	}
	fitted, rem := CurveETA(curve, 1.0)
	if math.Abs(fitted-a) > 1e-6*a {
		t.Fatalf("fitted a = %g, want %g", fitted, a)
	}
	// At iteration 40 the error is a/40 = 5; reaching ε=1 needs a/1 - a/5
	// more iterations = 160.
	if want := 160.0; math.Abs(rem-want) > 1 {
		t.Fatalf("remaining = %g, want ≈%g", rem, want)
	}

	if _, rem := CurveETA(nil, 1.0); rem != -1 {
		t.Fatalf("empty curve: remaining = %g, want -1", rem)
	}
	if _, rem := CurveETA(curve, 0); rem != -1 {
		t.Fatalf("tol=0 (infinite projection): remaining = %g, want -1", rem)
	}
}

func TestFinite(t *testing.T) {
	for _, v := range []float64{0, 1, -3.5, 1e-300, math.MaxFloat64} {
		if Finite(v) != v {
			t.Fatalf("Finite(%g) = %g, want pass-through", v, Finite(v))
		}
	}
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if Finite(v) != -1 {
			t.Fatalf("Finite(%g) = %g, want -1", v, Finite(v))
		}
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("optimize", -1)
	child := tr.Start("speculate", root)
	if d := tr.End(child); d < 0 {
		t.Fatalf("child duration %v", d)
	}
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "optimize" || spans[0].Parent != -1 {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[1].Name != "speculate" || spans[1].Parent != root {
		t.Fatalf("child span = %+v, want parent %d", spans[1], root)
	}
	for _, sp := range spans {
		if sp.EndNanos <= sp.StartNanos {
			t.Fatalf("span %q not closed: start %d end %d", sp.Name, sp.StartNanos, sp.EndNanos)
		}
	}
	// The child must nest inside the parent on the monotonic timeline.
	if spans[1].StartNanos < spans[0].StartNanos || spans[1].EndNanos > spans[0].EndNanos {
		t.Fatalf("child [%d,%d] escapes parent [%d,%d]",
			spans[1].StartNanos, spans[1].EndNanos, spans[0].StartNanos, spans[0].EndNanos)
	}

	if tot := tr.Totals(); tot["optimize"] <= 0 || tot["speculate"] <= 0 {
		t.Fatalf("Totals = %v, want positive per-phase seconds", tot)
	}
	// End is idempotent and tolerant of junk ids.
	if d := tr.End(child); d != 0 {
		t.Fatalf("double End returned %v, want 0", d)
	}
	if tr.End(-1) != 0 || tr.End(99) != 0 {
		t.Fatal("End of invalid ids must be a no-op")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if id := tr.Start("x", -1); id != -1 {
		t.Fatalf("nil trace Start = %d, want -1", id)
	}
	if d := tr.End(0); d != 0 {
		t.Fatalf("nil trace End = %v, want 0", d)
	}
	if spans := tr.Spans(); spans != nil {
		t.Fatalf("nil trace Spans = %v", spans)
	}
}

func TestTraceOnEnd(t *testing.T) {
	tr := NewTrace()
	var gotName string
	var gotDur time.Duration
	tr.OnEnd(func(name string, d time.Duration) { gotName, gotDur = name, d })
	id := tr.Start("train", -1)
	tr.End(id)
	if gotName != "train" || gotDur <= 0 {
		t.Fatalf("OnEnd saw (%q, %v), want (train, >0)", gotName, gotDur)
	}
}

func TestEventLogReplayAndClose(t *testing.T) {
	l := NewEventLog(8)
	l.Append(Event{Type: "state", State: "running"})
	l.Append(Event{Type: "progress", Iter: 1, Delta: 0.5})
	l.Append(Event{Type: "progress", Iter: 2, Delta: 0.25})

	evs, closed, err := l.Wait(context.Background(), -1)
	if err != nil || closed {
		t.Fatalf("Wait: evs=%d closed=%v err=%v", len(evs), closed, err)
	}
	if len(evs) != 3 || evs[0].Seq != 0 || evs[2].Seq != 2 {
		t.Fatalf("replay = %+v", evs)
	}
	// Resume from the middle of the stream.
	evs, _, _ = l.Wait(context.Background(), 1)
	if len(evs) != 1 || evs[0].Iter != 2 {
		t.Fatalf("Wait(after=1) = %+v", evs)
	}

	l.Close("completed")
	if !l.Closed() {
		t.Fatal("log not closed after Close")
	}
	evs, closed, err = l.Wait(context.Background(), 2)
	if err != nil || !closed || len(evs) != 1 || evs[0].State != "completed" {
		t.Fatalf("terminal Wait: evs=%+v closed=%v err=%v", evs, closed, err)
	}
	// Fully drained on a closed stream: empty page, closed=true, immediately.
	evs, closed, err = l.Wait(context.Background(), 3)
	if err != nil || !closed || len(evs) != 0 {
		t.Fatalf("drained Wait: evs=%+v closed=%v err=%v", evs, closed, err)
	}
	// Appends after Close are dropped.
	l.Append(Event{Type: "progress", Iter: 3})
	if evs, _, _ := l.Wait(context.Background(), 3); len(evs) != 0 {
		t.Fatalf("append after Close leaked: %+v", evs)
	}
}

func TestEventLogRetention(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Type: "progress", Iter: i})
	}
	evs, _, _ := l.Wait(context.Background(), -1)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("retained window = Seq %d..%d, want 6..9", evs[0].Seq, evs[3].Seq)
	}
}

func TestEventLogWaitWakes(t *testing.T) {
	l := NewEventLog(8)
	got := make(chan []Event, 1)
	go func() {
		evs, _, _ := l.Wait(context.Background(), -1)
		got <- evs
	}()
	time.Sleep(10 * time.Millisecond)
	l.Append(Event{Type: "progress", Iter: 7})
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].Iter != 7 {
			t.Fatalf("woken with %+v", evs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never woke on Append")
	}
}

func TestEventLogWaitContext(t *testing.T) {
	l := NewEventLog(8)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := l.Wait(ctx, -1); err == nil {
		t.Fatal("Wait on an empty open stream must respect ctx")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Append(Event{})
	l.Close("x")
	if !l.Closed() {
		t.Fatal("nil log must report closed")
	}
	evs, closed, err := l.Wait(context.Background(), -1)
	if err != nil || !closed || len(evs) != 0 {
		t.Fatalf("nil Wait: evs=%v closed=%v err=%v", evs, closed, err)
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Version == "" {
		t.Fatal("Version must never be empty (falls back to dev)")
	}
	if b.Go == "" {
		t.Fatal("Go version missing")
	}
}
