package obs

import (
	"sync"
	"time"
)

// Span is one named, timed phase of a run. Timestamps are monotonic
// nanoseconds relative to the trace's birth, so a timeline renders without
// wall-clock skew; Parent is the id of the enclosing span or -1 for roots.
// EndNanos is 0 while the span is open.
type Span struct {
	ID         int    `json:"id"`
	Parent     int    `json:"parent"`
	Name       string `json:"name"`
	StartNanos int64  `json:"start_nanos"`
	EndNanos   int64  `json:"end_nanos,omitempty"`
}

// Trace collects the spans of one job. A nil *Trace is a valid no-op
// recorder: Start returns -1 and End ignores it, so call sites thread an
// optional trace without branching. All methods are safe for concurrent
// use.
type Trace struct {
	mu    sync.Mutex
	birth time.Time
	spans []Span
	onEnd func(name string, d time.Duration)
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace { return &Trace{birth: time.Now()} }

// OnEnd registers a callback invoked (outside the trace lock) every time a
// span closes, with the span's name and duration — the serving layer hooks
// its per-phase histograms here so trace aggregation costs the producers
// nothing extra.
func (t *Trace) OnEnd(fn func(name string, d time.Duration)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onEnd = fn
	t.mu.Unlock()
}

// Start opens a span and returns its id. parent is the enclosing span's id
// or -1 for a root. On a nil trace it returns -1, which End ignores.
func (t *Trace) Start(name string, parent int) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	id := len(t.spans)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name,
		StartNanos: time.Since(t.birth).Nanoseconds(),
	})
	t.mu.Unlock()
	return id
}

// End closes span id and returns its duration. It is idempotent — a second
// End of the same id (or an invalid id, including -1) does nothing and
// returns 0 — so cleanup paths can End unconditionally.
func (t *Trace) End(id int) time.Duration {
	if t == nil || id < 0 {
		return 0
	}
	t.mu.Lock()
	if id >= len(t.spans) || t.spans[id].EndNanos != 0 {
		t.mu.Unlock()
		return 0
	}
	end := time.Since(t.birth).Nanoseconds()
	if end <= t.spans[id].StartNanos {
		end = t.spans[id].StartNanos + 1 // keep EndNanos != 0 as the closed marker
	}
	t.spans[id].EndNanos = end
	d := time.Duration(end - t.spans[id].StartNanos)
	name := t.spans[id].Name
	fn := t.onEnd
	t.mu.Unlock()
	if fn != nil {
		fn(name, d)
	}
	return d
}

// Spans returns a copy of all spans recorded so far, in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Totals aggregates the closed spans' durations into seconds per name.
func (t *Trace) Totals() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, 8)
	for _, s := range t.spans {
		if s.EndNanos != 0 {
			out[s.Name] += float64(s.EndNanos-s.StartNanos) / 1e9
		}
	}
	return out
}
