package obs

import (
	"context"
	"sync"
	"time"
)

// Event is one live job notification: a training progress sample, a
// lifecycle state change, or a mid-flight plan switch. Seq is contiguous
// per job starting at 0; consumers resume a stream by passing the last Seq
// they saw.
type Event struct {
	Seq      int     `json:"seq"`
	Type     string  `json:"type"` // "progress" | "state" | "switch"
	State    string  `json:"state,omitempty"`
	Plan     string  `json:"plan,omitempty"`
	Iter     int     `json:"iter,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	FittedA  float64 `json:"fitted_a,omitempty"`
	EtaIters float64 `json:"eta_iters,omitempty"`
	TsMillis int64   `json:"ts_millis"`
}

// EventLog is a bounded, replayable event stream with blocking reads — the
// backing store of the /v1/jobs/{id}/events endpoint. It retains the last
// capacity events (so late subscribers replay recent history), assigns
// sequence numbers and timestamps on Append, and wakes all Wait-ers on
// every change. Close appends a terminal state event and ends the stream;
// subsequent Appends are dropped and Wait never blocks again.
type EventLog struct {
	mu     sync.Mutex
	events []Event
	first  int // Seq of events[0]
	seq    int
	closed bool
	wake   chan struct{}
	cap    int
}

// NewEventLog returns an event log retaining the last capacity events
// (<=0 means 1024).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{wake: make(chan struct{}), cap: capacity}
}

// Append stamps ev with the next sequence number and the current wall
// clock, stores it, and wakes waiters. Appends after Close (or on a nil
// log) are dropped.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.push(ev)
	l.mu.Unlock()
}

// Close appends a final "state" event carrying finalState and seals the
// stream: every current and future Wait returns immediately with
// closed=true once it has drained.
func (l *EventLog) Close(finalState string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.push(Event{Type: "state", State: finalState})
	l.closed = true
	l.mu.Unlock()
}

// push appends under l.mu and broadcasts.
func (l *EventLog) push(ev Event) {
	ev.Seq = l.seq
	l.seq++
	ev.TsMillis = time.Now().UnixMilli()
	l.events = append(l.events, ev)
	if len(l.events) > l.cap {
		drop := len(l.events) - l.cap
		l.events = append(l.events[:0:0], l.events[drop:]...)
		l.first += drop
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// since returns a copy of the retained events with Seq > after.
func (l *EventLog) since(after int) []Event {
	idx := after + 1 - l.first
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.events) {
		return nil
	}
	return append([]Event(nil), l.events[idx:]...)
}

// Closed reports whether the stream has been sealed (a nil log is closed).
func (l *EventLog) Closed() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Wait returns the events with Seq > after, blocking until at least one
// exists, the stream closes, or ctx is done. A nil error with an empty
// slice is only possible on a closed stream the caller has fully drained.
func (l *EventLog) Wait(ctx context.Context, after int) (evs []Event, closed bool, err error) {
	if l == nil {
		return nil, true, nil
	}
	for {
		l.mu.Lock()
		evs = l.since(after)
		closed = l.closed
		wake := l.wake
		l.mu.Unlock()
		if len(evs) > 0 || closed {
			return evs, closed, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-wake:
		}
	}
}
