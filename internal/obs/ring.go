// Package obs is the observability layer: iteration telemetry (Ring),
// tracing spans (Trace), live job event streams (EventLog), the persistent
// run ledger (Ledger) and build metadata (Build). It is zero-dependency by
// design — standard library plus the engine/estimator/fault internals it
// observes — and every type is safe for the access pattern its producer
// uses. The contract with the hot paths: a nil observer costs the engine one
// branch per iteration and the serving predict path zero allocations (the
// benchgate pins both).
package obs

import (
	"math"
	"sync"
	"time"

	"ml4all/internal/engine"
	"ml4all/internal/estimator"
)

// maxCurvePoints bounds the observed-curve memory: when the monotone
// sequence outgrows it, every other interior point is dropped (the
// subsequence stays monotone, the fit barely moves).
const maxCurvePoints = 4096

// IterRecord is one observed iteration: the engine's event plus the wall
// time since the previous event. The Ring diffs the wall clock itself so
// the trainer's hot path never reads a clock when no observer is set.
type IterRecord struct {
	engine.IterEvent
	WallNanos int64
}

// Ring is a fixed-capacity iteration-telemetry buffer implementing
// engine.Observer. It retains the most recent events verbatim and, across
// the whole run (including evicted events), accumulates the observed
// monotone T(ε) curve and total wall time. All methods are safe for
// concurrent use; ObserveIter is only ever called from the single driver
// goroutine of a run, readers may be anyone.
type Ring struct {
	mu    sync.Mutex
	buf   []IterRecord
	next  int // write index once buf is full
	count int // total events observed, may exceed len(buf)
	last  time.Time
	wall  time.Duration
	curve []estimator.Point
	best  float64
}

// NewRing returns a Ring retaining the last capacity events (<=0 means
// 1024).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]IterRecord, 0, capacity), best: math.Inf(1)}
}

// ObserveIter implements engine.Observer.
func (r *Ring) ObserveIter(ev engine.IterEvent) {
	now := time.Now()
	r.mu.Lock()
	var wall int64
	if !r.last.IsZero() {
		wall = now.Sub(r.last).Nanoseconds()
	}
	r.last = now
	r.wall += time.Duration(wall)
	rec := IterRecord{IterEvent: ev, WallNanos: wall}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % len(r.buf)
	}
	r.count++
	if ev.Delta < r.best && ev.Delta > 0 && !math.IsInf(ev.Delta, 0) {
		r.best = ev.Delta
		r.curve = append(r.curve, estimator.Point{Iter: ev.Iter, Err: ev.Delta})
		if len(r.curve) > maxCurvePoints {
			kept := r.curve[:0]
			for i, p := range r.curve {
				if i%2 == 0 || i == len(r.curve)-1 {
					kept = append(kept, p)
				}
			}
			r.curve = kept
		}
	}
	r.mu.Unlock()
}

// Events returns the retained events in chronological order (a copy).
func (r *Ring) Events() []IterRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]IterRecord, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) && r.next > 0 {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Curve returns the observed monotone T(ε) sequence accumulated over the
// whole run (a copy) — the empirical counterpart of the estimator's
// speculative sequence, fit-ready for FitInverse.
func (r *Ring) Curve() []estimator.Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]estimator.Point(nil), r.curve...)
}

// Count returns how many iterations have been observed in total.
func (r *Ring) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// WallSeconds returns the cumulative wall time between observed iterations.
func (r *Ring) WallSeconds() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wall.Seconds()
}

// CurveETA fits T(ε) = a/ε to an observed curve and projects the remaining
// iterations from the curve's current error level down to tol. It returns
// the fitted a and the projection; remaining is -1 when no estimate is
// possible (empty or unfittable curve, or an infinite projection).
func CurveETA(curve []estimator.Point, tol float64) (a, remaining float64) {
	if len(curve) == 0 {
		return 0, -1
	}
	a, err := estimator.FitInverse(curve)
	if err != nil {
		return 0, -1
	}
	rem := estimator.RemainingIterations(a, tol, curve[len(curve)-1].Err)
	if math.IsInf(rem, 0) {
		return a, -1
	}
	return a, rem
}

// Finite maps NaN and ±Inf to -1 so values derived from fits (which use
// +Inf as "unfittable") stay JSON-encodable; finite values pass through
// bit-exactly.
func Finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}
