// Package metrics evaluates trained models the way the paper's Section 8.5
// does: apply the weight vector to each test example, compare the produced
// label against ground truth, and report the mean square error (plus
// accuracy for classification, which the paper discusses but does not plot).
package metrics

import (
	"fmt"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Predict returns the label the model assigns to one unit: the sign (±1) for
// classification tasks, the raw score for regression.
func Predict(task data.TaskKind, w linalg.Vector, u data.Row) float64 {
	score := u.Dot(w)
	if task == data.TaskLinearRegression {
		return score
	}
	if score >= 0 {
		return 1
	}
	return -1
}

// Report summarizes model quality on a test set.
type Report struct {
	N        int
	MSE      float64 // mean square error of predicted vs. true labels
	Accuracy float64 // fraction of exact label matches (classification)
}

// Evaluate scores the model on every unit of the test dataset.
func Evaluate(task data.TaskKind, w linalg.Vector, test *data.Dataset) (Report, error) {
	if test.N() == 0 {
		return Report{}, fmt.Errorf("metrics: empty test set %q", test.Name)
	}
	var sse float64
	var correct int
	for i := 0; i < test.N(); i++ {
		u := test.Row(i)
		p := Predict(task, w, u)
		d := p - u.Label
		sse += d * d
		if p == u.Label {
			correct++
		}
	}
	n := test.N()
	return Report{
		N:        n,
		MSE:      sse / float64(n),
		Accuracy: float64(correct) / float64(n),
	}, nil
}
