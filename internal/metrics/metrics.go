// Package metrics evaluates trained models the way the paper's Section 8.5
// does: apply the weight vector to each test example, compare the produced
// label against ground truth, and report the mean square error (plus
// accuracy for classification, which the paper discusses but does not plot).
package metrics

import (
	"fmt"
	"sync"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Predict returns the label the model assigns to one unit: the sign (±1) for
// classification tasks, the raw score for regression.
func Predict(task data.TaskKind, w linalg.Vector, u data.Row) float64 {
	return PredictScore(task, u.Dot(w))
}

// PredictScore maps a raw score <x, w> to the predicted label — the decision
// rule shared by the per-row and blocked evaluation paths.
func PredictScore(task data.TaskKind, score float64) float64 {
	if task == data.TaskLinearRegression {
		return score
	}
	if score >= 0 {
		return 1
	}
	return -1
}

// Report summarizes model quality on a test set.
type Report struct {
	N        int
	MSE      float64 // mean square error of predicted vs. true labels
	Accuracy float64 // fraction of exact label matches (classification)
}

// evalBlockSize is the row-block width Evaluate scores with; it only affects
// speed — the squared-error sum accumulates one row at a time in row order
// either way, so the report is bitwise independent of the width.
const evalBlockSize = data.DefaultBlockSize

// marginPool recycles the per-call block scratch of the scoring loops. A
// 4KiB buffer per ScoresInto call is irrelevant offline but is the dominant
// per-request garbage of the serving hot path, where thousands of small
// predict calls each score a handful of rows — pooled, the steady-state
// scoring path allocates nothing. Every block pass overwrites the slots it
// reads (MarginsInto writes out[:n] unconditionally), so reuse cannot leak
// stale margins.
var marginPool = sync.Pool{New: func() any {
	b := make([]float64, evalBlockSize)
	return &b
}}

// ScoresInto fills out[i] with the raw margin <row i, w> for every row of m,
// computed in blocked kernel passes — the same MarginsInto path Evaluate
// scores through, so a row's margin is bitwise identical whether it arrives
// in a dataset file or a serving request. out must have at least NumRows
// slots; only the first NumRows are written.
func ScoresInto(w linalg.Vector, m *data.Matrix, out []float64) {
	n := m.NumRows()
	out = out[:n]
	mp := marginPool.Get().(*[]float64)
	defer marginPool.Put(mp)
	margins := *mp
	for lo := 0; lo < n; lo += evalBlockSize {
		hi := min(lo+evalBlockSize, n)
		blk := m.Block(lo, hi)
		blk.MarginsInto(w, margins)
		copy(out[lo:hi], margins[:hi-lo])
	}
}

// ScoresIntoFast is the fast-math tier's ScoresInto: margins through the
// multi-accumulator kernels (Block.MarginsIntoFast), agreeing with
// ScoresInto only to a relative tolerance. Classification predictions can
// flip for rows whose margin sits within that tolerance of zero — callers
// serving hard-threshold decisions at scale accept that when they opt in.
func ScoresIntoFast(w linalg.Vector, m *data.Matrix, out []float64) {
	n := m.NumRows()
	out = out[:n]
	mp := marginPool.Get().(*[]float64)
	defer marginPool.Put(mp)
	margins := *mp
	for lo := 0; lo < n; lo += evalBlockSize {
		hi := min(lo+evalBlockSize, n)
		blk := m.Block(lo, hi)
		blk.MarginsIntoFast(w, margins)
		copy(out[lo:hi], margins[:hi-lo])
	}
}

// PredictInto fills out[i] with the label the model assigns to row i of m:
// ScoresInto mapped through PredictScore, in place.
func PredictInto(task data.TaskKind, w linalg.Vector, m *data.Matrix, out []float64) {
	ScoresInto(w, m, out)
	for i, s := range out[:m.NumRows()] {
		out[i] = PredictScore(task, s)
	}
}

// Evaluate scores the model on every unit of the test dataset. Scoring runs
// through the blocked margin kernels over the dataset's columnar arena: one
// fused dot-product pass per row block instead of a Row view and a Dot call
// per unit. (A dataset without an arena has N() == 0 and is rejected as
// empty, so the arena is always present past that check.)
func Evaluate(task data.TaskKind, w linalg.Vector, test *data.Dataset) (Report, error) {
	n := test.N()
	if n == 0 {
		return Report{}, fmt.Errorf("metrics: empty test set %q", test.Name)
	}
	var sse float64
	var correct int
	mp := marginPool.Get().(*[]float64)
	defer marginPool.Put(mp)
	margins := *mp
	for lo := 0; lo < n; lo += evalBlockSize {
		hi := lo + evalBlockSize
		if hi > n {
			hi = n
		}
		blk := test.Mat.Block(lo, hi)
		blk.MarginsInto(w, margins)
		for j := 0; j < hi-lo; j++ {
			p := PredictScore(task, margins[j])
			y := blk.Label(j)
			d := p - y
			sse += d * d
			if p == y {
				correct++
			}
		}
	}
	return Report{
		N:        n,
		MSE:      sse / float64(n),
		Accuracy: float64(correct) / float64(n),
	}, nil
}
