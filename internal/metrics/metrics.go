// Package metrics evaluates trained models the way the paper's Section 8.5
// does: apply the weight vector to each test example, compare the produced
// label against ground truth, and report the mean square error (plus
// accuracy for classification, which the paper discusses but does not plot).
package metrics

import (
	"fmt"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Predict returns the label the model assigns to one unit: the sign (±1) for
// classification tasks, the raw score for regression.
func Predict(task data.TaskKind, w linalg.Vector, u data.Row) float64 {
	return PredictScore(task, u.Dot(w))
}

// PredictScore maps a raw score <x, w> to the predicted label — the decision
// rule shared by the per-row and blocked evaluation paths.
func PredictScore(task data.TaskKind, score float64) float64 {
	if task == data.TaskLinearRegression {
		return score
	}
	if score >= 0 {
		return 1
	}
	return -1
}

// Report summarizes model quality on a test set.
type Report struct {
	N        int
	MSE      float64 // mean square error of predicted vs. true labels
	Accuracy float64 // fraction of exact label matches (classification)
}

// evalBlockSize is the row-block width Evaluate scores with; it only affects
// speed — the squared-error sum accumulates one row at a time in row order
// either way, so the report is bitwise independent of the width.
const evalBlockSize = data.DefaultBlockSize

// Evaluate scores the model on every unit of the test dataset. Scoring runs
// through the blocked margin kernels over the dataset's columnar arena: one
// fused dot-product pass per row block instead of a Row view and a Dot call
// per unit. (A dataset without an arena has N() == 0 and is rejected as
// empty, so the arena is always present past that check.)
func Evaluate(task data.TaskKind, w linalg.Vector, test *data.Dataset) (Report, error) {
	n := test.N()
	if n == 0 {
		return Report{}, fmt.Errorf("metrics: empty test set %q", test.Name)
	}
	var sse float64
	var correct int
	margins := make([]float64, evalBlockSize)
	for lo := 0; lo < n; lo += evalBlockSize {
		hi := lo + evalBlockSize
		if hi > n {
			hi = n
		}
		blk := test.Mat.Block(lo, hi)
		blk.MarginsInto(w, margins)
		for j := 0; j < hi-lo; j++ {
			p := PredictScore(task, margins[j])
			y := blk.Label(j)
			d := p - y
			sse += d * d
			if p == y {
				correct++
			}
		}
	}
	return Report{
		N:        n,
		MSE:      sse / float64(n),
		Accuracy: float64(correct) / float64(n),
	}, nil
}
