package metrics

import (
	"math"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
	"ml4all/internal/synth"
)

func TestPredictClassificationSign(t *testing.T) {
	w := linalg.Vector{1, -1}
	up := data.NewDenseRow(1, linalg.Vector{2, 1})  // score 1 => +1
	un := data.NewDenseRow(-1, linalg.Vector{0, 1}) // score -1 => -1
	if Predict(data.TaskSVM, w, up) != 1 {
		t.Fatal("positive score misclassified")
	}
	if Predict(data.TaskLogisticRegression, w, un) != -1 {
		t.Fatal("negative score misclassified")
	}
}

func TestPredictRegressionRawScore(t *testing.T) {
	w := linalg.Vector{0.5}
	u := data.NewDenseRow(0, linalg.Vector{4})
	if got := Predict(data.TaskLinearRegression, w, u); got != 2 {
		t.Fatalf("regression prediction = %g, want 2", got)
	}
}

func TestEvaluatePerfectModel(t *testing.T) {
	units := []data.Unit{
		data.NewDenseUnit(1, linalg.Vector{1, 0}),
		data.NewDenseUnit(-1, linalg.Vector{-1, 0}),
	}
	ds := data.FromUnits("t", data.TaskSVM, units)
	rep, err := Evaluate(data.TaskSVM, linalg.Vector{1, 0}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MSE != 0 || rep.Accuracy != 1 || rep.N != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEvaluateAllWrong(t *testing.T) {
	units := []data.Unit{data.NewDenseUnit(1, linalg.Vector{-1})}
	ds := data.FromUnits("t", data.TaskSVM, units)
	rep, err := Evaluate(data.TaskSVM, linalg.Vector{1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction -1 vs truth +1: squared error 4.
	if rep.MSE != 4 || rep.Accuracy != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEvaluateEmptyErrors(t *testing.T) {
	ds := data.FromUnits("e", data.TaskSVM, nil)
	if _, err := Evaluate(data.TaskSVM, linalg.Vector{1}, ds); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestEvaluateOnSeparableSyntheticData(t *testing.T) {
	// A half-decent training loop must beat coin flipping on gap data; here
	// we cheat and use the mean of positive minus negative points as w.
	ds := synth.MustGenerate(synth.Spec{
		Name: "t", Task: data.TaskSVM, N: 800, D: 20, Density: 1,
		Noise: 0, Margin: 2, Gap: 1.5, Seed: 11,
	})
	w := linalg.NewVector(ds.NumFeatures)
	for _, u := range ds.Rows() {
		u.AddScaledInto(w, u.Label)
	}
	rep, err := Evaluate(data.TaskSVM, w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.9 {
		t.Fatalf("centroid classifier accuracy %.2f on separable data", rep.Accuracy)
	}
	if math.Abs(rep.MSE-4*(1-rep.Accuracy)) > 1e-9 {
		t.Fatalf("MSE %g inconsistent with accuracy %g (labels are ±1)", rep.MSE, rep.Accuracy)
	}
}
