package planner

import (
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func fixture(t *testing.T, name string, n int) (*storage.Store, gd.Params) {
	t.Helper()
	spec, err := synth.ByName(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		spec.N = n
	}
	ds := synth.MustGenerate(spec)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 500}
	return st, p
}

func TestSpaceIsElevenPlans(t *testing.T) {
	_, p := fixture(t, "adult", 500)
	plans := Space(p)
	if len(plans) != 11 {
		t.Fatalf("plan space = %d, want 11 (Figure 5)", len(plans))
	}
	seen := map[string]bool{}
	for _, pl := range plans {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s invalid: %v", pl.Name(), err)
		}
		if seen[pl.Name()] {
			t.Errorf("duplicate plan %s", pl.Name())
		}
		seen[pl.Name()] = true
	}
	// Exactly one BGD plan; lazy+bernoulli absent.
	if !seen["BGD"] {
		t.Error("BGD plan missing")
	}
	for _, banned := range []string{"SGD-lazy-bernoulli", "MGD-lazy-bernoulli"} {
		if seen[banned] {
			t.Errorf("banned plan %s present", banned)
		}
	}
}

func TestCostAllRanksAscending(t *testing.T) {
	st, p := fixture(t, "covtype", 3000)
	choices := CostAll(st, cluster.Default(), p, 100)
	if len(choices) != 11 {
		t.Fatalf("costed %d plans, want 11", len(choices))
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].Cost < choices[i-1].Cost {
			t.Fatalf("ranking not ascending at %d", i)
		}
	}
	for _, c := range choices {
		if c.Iterations != 100 {
			t.Fatalf("%s costed at %d iterations, want 100", c.Plan.Name(), c.Iterations)
		}
		if c.Cost <= 0 {
			t.Fatalf("%s has non-positive cost", c.Plan.Name())
		}
	}
}

func TestChooseFixedIterationsSkipsSpeculation(t *testing.T) {
	st, p := fixture(t, "covtype", 3000)
	sim := cluster.New(cluster.Default())
	dec, err := Choose(sim, st, p, Options{FixedIterations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if dec.SpecTime != 0 || len(dec.Estimates) != 0 {
		t.Fatal("fixed iterations still speculated")
	}
	if sim.Now() != 0 {
		t.Fatalf("fixed-iteration optimization advanced the clock by %g", sim.Now())
	}
	// With iterations fixed high, a stochastic plan must win (the paper's
	// Figure 7(a) observation: ML4all selected SGD for all datasets).
	if dec.Best.Plan.Algorithm == gd.BGD {
		t.Fatalf("BGD chosen for 1000 fixed iterations over %s", dec.Best.Plan.Name())
	}
}

func TestChooseSpeculatesAndCharges(t *testing.T) {
	st, p := fixture(t, "covtype", 3000)
	sim := cluster.New(cluster.Default())
	dec, err := Choose(sim, st, p, Options{
		Estimator: estimator.Config{SampleSize: 300, TimeBudget: 3, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Estimates) != 3 {
		t.Fatalf("speculated %d algorithms, want 3 (BGD, SGD, MGD)", len(dec.Estimates))
	}
	if dec.SpecTime <= 0 {
		t.Fatal("no speculation time recorded")
	}
	if sim.Now() < dec.SpecTime {
		t.Fatalf("optimizer overhead not charged: clock %g < spec %g", sim.Now(), dec.SpecTime)
	}
	if len(dec.Ranked) != 11 {
		t.Fatalf("ranked %d plans", len(dec.Ranked))
	}
	if dec.Best.Cost != dec.Ranked[0].Cost {
		t.Fatal("best is not the cheapest ranked plan")
	}
}

// TestChoiceAvoidsWorstPlan is the optimizer's core promise ("like database
// optimizers, the main goal is to avoid the worst execution plans"): the
// chosen plan, actually executed, must land much closer to the best plan
// than to the worst.
func TestChoiceAvoidsWorstPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("executes several plans")
	}
	st, p := fixture(t, "covtype", 3000)
	p.MaxIter = 150
	sim := cluster.New(cluster.Default())
	dec, err := Choose(sim, st, p, Options{
		Estimator: estimator.Config{SampleSize: 300, TimeBudget: 3, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	times := map[string]cluster.Seconds{}
	for _, c := range dec.Ranked {
		plan := c.Plan
		s := cluster.New(cluster.Default())
		res, err := engine.Run(s, st, &plan, engine.Options{Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", plan.Name(), err)
		}
		times[plan.Name()] = res.Time
	}
	best, worst := times[dec.Ranked[0].Plan.Name()], times[dec.Ranked[0].Plan.Name()]
	for _, tt := range times {
		if tt < best {
			best = tt
		}
		if tt > worst {
			worst = tt
		}
	}
	chosen := times[dec.Best.Plan.Name()]
	if worst <= best {
		t.Skip("degenerate spread")
	}
	// Chosen within the cheapest third of the best..worst span.
	frac := float64(chosen-best) / float64(worst-best)
	if frac > 0.34 {
		t.Fatalf("chosen plan %s at %.2fs sits %.0f%% into [best %.2fs, worst %.2fs]",
			dec.Best.Plan.Name(), chosen, frac*100, best, worst)
	}
}

func TestEstimateFor(t *testing.T) {
	st, p := fixture(t, "adult", 0)
	est, err := EstimateFor(st, p, gd.BGD, estimator.Config{SampleSize: 300, TimeBudget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Algo != gd.BGD || len(est.Sequence) == 0 {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestIterationEstimatesCappedByMaxIter(t *testing.T) {
	st, p := fixture(t, "adult", 0)
	p.Tolerance = 1e-9 // extrapolates to astronomically many iterations
	p.MaxIter = 77
	sim := cluster.New(cluster.Default())
	dec, err := Choose(sim, st, p, Options{
		Estimator: estimator.Config{SampleSize: 200, TimeBudget: 2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range dec.Ranked {
		if c.Iterations > 77 {
			t.Fatalf("%s estimated %d iterations beyond MaxIter 77", c.Plan.Name(), c.Iterations)
		}
	}
}
