package planner

import (
	"strings"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func adaptiveStore(t testing.TB, n int) *storage.Store {
	t.Helper()
	ds, err := synth.Generate(synth.Spec{
		Name: "adaptive-test", Task: data.TaskLogisticRegression,
		N: n, D: 40, Density: 0.6, Noise: 0.6, Margin: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAdaptiveNoChecksMatchesStatic pins the "adaptation disabled ⇒ the
// refactor is invisible" criterion at the controller level: with the check
// period beyond MaxIter the controller never fires, and the run must be
// bit-identical to Choose followed by a plain engine.Run of the chosen plan.
func TestAdaptiveNoChecksMatchesStatic(t *testing.T) {
	st := adaptiveStore(t, 3000)
	p := gd.Params{Task: st.Dataset.Task, Format: st.Dataset.Format, Lambda: 0.01, Tolerance: 1e-3, MaxIter: 400}
	est := estimator.Config{SampleSize: 500, SpecTolerance: 0.1, TimeBudget: 5, Seed: 1}

	for _, workers := range []int{1, 2, 8} {
		acfg := AdaptiveConfig{Every: 1 << 20, Seed: 3, Workers: workers}
		sim := cluster.New(cluster.Default())
		ar, err := RunAdaptive(sim, st, p, Options{Estimator: est}, acfg)
		if err != nil {
			t.Fatal(err)
		}
		if ar.Checks != 0 || len(ar.Switches) != 0 {
			t.Fatalf("workers=%d: controller fired (%d checks, %d switches) with Every > MaxIter",
				workers, ar.Checks, len(ar.Switches))
		}

		ref := cluster.New(cluster.Default())
		dec, err := Choose(ref, st, p, Options{Estimator: est})
		if err != nil {
			t.Fatal(err)
		}
		plan := dec.Best.Plan
		res, err := engine.Run(ref, st, &plan, engine.Options{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Result.PlanName != plan.Name() {
			t.Fatalf("workers=%d: adaptive ran %s, static chose %s", workers, ar.Result.PlanName, plan.Name())
		}
		if !ar.Result.Weights.Equal(res.Weights, 0) {
			t.Fatalf("workers=%d: weights differ from static run", workers)
		}
		if ar.Result.Iterations != res.Iterations || ar.Result.FinalDelta != res.FinalDelta {
			t.Fatalf("workers=%d: iterations/delta differ: %d/%g vs %d/%g", workers,
				ar.Result.Iterations, ar.Result.FinalDelta, res.Iterations, res.FinalDelta)
		}
		if len(ar.Result.Deltas) != len(res.Deltas) {
			t.Fatalf("workers=%d: delta history %d vs %d", workers, len(ar.Result.Deltas), len(res.Deltas))
		}
		for i := range res.Deltas {
			if ar.Result.Deltas[i] != res.Deltas[i] {
				t.Fatalf("workers=%d: delta[%d] %g != %g", workers, i, ar.Result.Deltas[i], res.Deltas[i])
			}
		}
		if ar.Result.Time != res.Time {
			t.Fatalf("workers=%d: training time %v != %v", workers, ar.Result.Time, res.Time)
		}
	}
}

// TestAdaptiveRescuesMisestimatedPlan is the mis-estimation scenario at test
// scale: speculation on a 1000-point sample makes batch-1000 MGD look
// near-deterministic, the optimizer commits to it, and on the full noisy
// dataset the plan stalls above the tolerance. The controller must detect
// the deviation from the re-fitted curve, switch, and converge — where the
// statically-chosen plan misses tolerance entirely.
func TestAdaptiveRescuesMisestimatedPlan(t *testing.T) {
	st := adaptiveStore(t, 19531)
	p := gd.Params{Task: st.Dataset.Task, Format: st.Dataset.Format, Lambda: 0.01, Tolerance: 2e-4, MaxIter: 4000}
	est := estimator.Config{SampleSize: 1000, SpecTolerance: 0.1, TimeBudget: 3, Seed: 1}

	sim := cluster.New(cluster.Default())
	ar, err := RunAdaptive(sim, st, p, Options{Estimator: est}, AdaptiveConfig{Every: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if ar.Decision.Best.Plan.Algorithm == gd.BGD {
		t.Fatalf("scenario lost its skew: optimizer chose %s up front", ar.Decision.Best.Plan.Name())
	}
	if len(ar.Switches) == 0 {
		t.Fatal("controller never switched despite mis-estimation")
	}
	sw := ar.Switches[0]
	if sw.FittedA <= sw.SpecA {
		t.Fatalf("switch not driven by a worse re-fit: a=%g vs spec %g", sw.FittedA, sw.SpecA)
	}
	if !ar.Result.Converged {
		t.Fatalf("adaptive run missed tolerance: final delta %g after %d iters", ar.Result.FinalDelta, ar.Result.Iterations)
	}
	if len(ar.Result.Deltas) != ar.Result.Iterations {
		t.Fatalf("merged delta history %d != %d iterations", len(ar.Result.Deltas), ar.Result.Iterations)
	}
	if !strings.Contains(strings.Join(ar.Log, "\n"), "refit") {
		t.Fatal("decision log missing the re-fitted estimate")
	}
	if !strings.Contains(ar.Result.PlanName, "→") {
		t.Fatalf("merged plan name %q does not chain segments", ar.Result.PlanName)
	}

	// The statically-chosen plan, run uninterrupted, misses the tolerance —
	// the run adaptation rescued.
	chosen := ar.Decision.Best.Plan
	static, err := engine.Run(cluster.New(cluster.Default()), st, &chosen, engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if static.Converged {
		t.Fatalf("scenario lost its sting: static %s converged in %d iters", chosen.Name(), static.Iterations)
	}
}
