package planner

import (
	"path/filepath"
	"strings"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/fault"
	"ml4all/internal/gd"
	"ml4all/internal/obs"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func adaptiveStore(t testing.TB, n int) *storage.Store {
	t.Helper()
	ds, err := synth.Generate(synth.Spec{
		Name: "adaptive-test", Task: data.TaskLogisticRegression,
		N: n, D: 40, Density: 0.6, Noise: 0.6, Margin: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAdaptiveNoChecksMatchesStatic pins the "adaptation disabled ⇒ the
// refactor is invisible" criterion at the controller level: with the check
// period beyond MaxIter the controller never fires, and the run must be
// bit-identical to Choose followed by a plain engine.Run of the chosen plan.
func TestAdaptiveNoChecksMatchesStatic(t *testing.T) {
	st := adaptiveStore(t, 3000)
	p := gd.Params{Task: st.Dataset.Task, Format: st.Dataset.Format, Lambda: 0.01, Tolerance: 1e-3, MaxIter: 400}
	est := estimator.Config{SampleSize: 500, SpecTolerance: 0.1, TimeBudget: 5, Seed: 1}

	for _, workers := range []int{1, 2, 8} {
		acfg := AdaptiveConfig{Every: 1 << 20, Seed: 3, Workers: workers}
		sim := cluster.New(cluster.Default())
		ar, err := RunAdaptive(sim, st, p, Options{Estimator: est}, acfg)
		if err != nil {
			t.Fatal(err)
		}
		if ar.Checks != 0 || len(ar.Switches) != 0 {
			t.Fatalf("workers=%d: controller fired (%d checks, %d switches) with Every > MaxIter",
				workers, ar.Checks, len(ar.Switches))
		}

		ref := cluster.New(cluster.Default())
		dec, err := Choose(ref, st, p, Options{Estimator: est})
		if err != nil {
			t.Fatal(err)
		}
		plan := dec.Best.Plan
		res, err := engine.Run(ref, st, &plan, engine.Options{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Result.PlanName != plan.Name() {
			t.Fatalf("workers=%d: adaptive ran %s, static chose %s", workers, ar.Result.PlanName, plan.Name())
		}
		if !ar.Result.Weights.Equal(res.Weights, 0) {
			t.Fatalf("workers=%d: weights differ from static run", workers)
		}
		if ar.Result.Iterations != res.Iterations || ar.Result.FinalDelta != res.FinalDelta {
			t.Fatalf("workers=%d: iterations/delta differ: %d/%g vs %d/%g", workers,
				ar.Result.Iterations, ar.Result.FinalDelta, res.Iterations, res.FinalDelta)
		}
		if len(ar.Result.Deltas) != len(res.Deltas) {
			t.Fatalf("workers=%d: delta history %d vs %d", workers, len(ar.Result.Deltas), len(res.Deltas))
		}
		for i := range res.Deltas {
			if ar.Result.Deltas[i] != res.Deltas[i] {
				t.Fatalf("workers=%d: delta[%d] %g != %g", workers, i, ar.Result.Deltas[i], res.Deltas[i])
			}
		}
		if ar.Result.Time != res.Time {
			t.Fatalf("workers=%d: training time %v != %v", workers, ar.Result.Time, res.Time)
		}
	}
}

// TestAdaptiveRescuesMisestimatedPlan is the mis-estimation scenario at test
// scale: speculation on a 1000-point sample makes batch-1000 MGD look
// near-deterministic, the optimizer commits to it, and on the full noisy
// dataset the plan stalls above the tolerance. The controller must detect
// the deviation from the re-fitted curve, switch, and converge — where the
// statically-chosen plan misses tolerance entirely.
func TestAdaptiveRescuesMisestimatedPlan(t *testing.T) {
	st := adaptiveStore(t, 19531)
	p := gd.Params{Task: st.Dataset.Task, Format: st.Dataset.Format, Lambda: 0.01, Tolerance: 2e-4, MaxIter: 4000}
	est := estimator.Config{SampleSize: 1000, SpecTolerance: 0.1, TimeBudget: 3, Seed: 1}

	sim := cluster.New(cluster.Default())
	ar, err := RunAdaptive(sim, st, p, Options{Estimator: est}, AdaptiveConfig{Every: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if ar.Decision.Best.Plan.Algorithm == gd.BGD {
		t.Fatalf("scenario lost its skew: optimizer chose %s up front", ar.Decision.Best.Plan.Name())
	}
	if len(ar.Switches) == 0 {
		t.Fatal("controller never switched despite mis-estimation")
	}
	sw := ar.Switches[0]
	if sw.FittedA <= sw.SpecA {
		t.Fatalf("switch not driven by a worse re-fit: a=%g vs spec %g", sw.FittedA, sw.SpecA)
	}
	if !ar.Result.Converged {
		t.Fatalf("adaptive run missed tolerance: final delta %g after %d iters", ar.Result.FinalDelta, ar.Result.Iterations)
	}
	if len(ar.Result.Deltas) != ar.Result.Iterations {
		t.Fatalf("merged delta history %d != %d iterations", len(ar.Result.Deltas), ar.Result.Iterations)
	}
	if !strings.Contains(strings.Join(ar.Log, "\n"), "refit") {
		t.Fatal("decision log missing the re-fitted estimate")
	}
	if !strings.Contains(ar.Result.PlanName, "→") {
		t.Fatalf("merged plan name %q does not chain segments", ar.Result.PlanName)
	}

	// The statically-chosen plan, run uninterrupted, misses the tolerance —
	// the run adaptation rescued.
	chosen := ar.Decision.Best.Plan
	static, err := engine.Run(cluster.New(cluster.Default()), st, &chosen, engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if static.Converged {
		t.Fatalf("scenario lost its sting: static %s converged in %d iters", chosen.Name(), static.Iterations)
	}
}

// TestAdaptiveRefitTelemetry re-runs the rescue scenario with the observer
// attached and pins the PR-10 telemetry: every check leaves a structured
// RefitEvent mirroring the decision log, the switch is recorded with its
// costed alternatives, the iteration ring accumulates the observed monotone
// T(ε) curve, and the whole run condenses into a ledger record that
// round-trips through disk — the batch-API path of the run ledger (the
// serving manager rejects adaptive statements).
func TestAdaptiveRefitTelemetry(t *testing.T) {
	st := adaptiveStore(t, 19531)
	p := gd.Params{Task: st.Dataset.Task, Format: st.Dataset.Format, Lambda: 0.01, Tolerance: 2e-4, MaxIter: 4000}
	est := estimator.Config{SampleSize: 1000, SpecTolerance: 0.1, TimeBudget: 3, Seed: 1}

	ring := obs.NewRing(0)
	sim := cluster.New(cluster.Default())
	ar, err := RunAdaptive(sim, st, p, Options{Estimator: est},
		AdaptiveConfig{Every: 50, Seed: 1, Observer: ring})
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Switches) == 0 {
		t.Fatal("scenario lost its sting: no switch")
	}

	// --- structured refits mirror the checks ---
	if len(ar.Refits) == 0 {
		t.Fatal("no RefitEvents recorded")
	}
	if len(ar.Refits) < ar.Checks {
		t.Fatalf("%d refit events for %d checks", len(ar.Refits), ar.Checks)
	}
	valid := map[string]bool{
		"budget-exhausted": true, "too-few-points": true, "converging": true,
		"deviation-gate": true, "endgame": true, "no-alternative": true,
		"hysteresis-keep": true, "switch": true,
	}
	var switches []RefitEvent
	for i, ev := range ar.Refits {
		if !valid[ev.Action] {
			t.Fatalf("refit %d has unknown action %q", i, ev.Action)
		}
		if ev.Iter <= 0 || ev.Plan == "" {
			t.Fatalf("refit %d incomplete: %+v", i, ev)
		}
		if ev.Action == "switch" {
			switches = append(switches, ev)
		}
	}
	if len(switches) != len(ar.Switches) {
		t.Fatalf("%d switch refits vs %d SwitchEvents", len(switches), len(ar.Switches))
	}
	sw := switches[0]
	if sw.FittedA != ar.Switches[0].FittedA || sw.Iter != ar.Switches[0].Iter {
		t.Fatalf("switch refit %+v disagrees with SwitchEvent %+v", sw, ar.Switches[0])
	}
	if len(sw.Costs) == 0 {
		t.Fatal("switch refit carries no per-plan cost table")
	}
	if sw.Reason == "" || !strings.Contains(sw.Reason, "switch") {
		t.Fatalf("switch refit reason %q", sw.Reason)
	}

	// --- the ring observed the whole run ---
	if ring.Count() != len(ar.Result.Deltas) {
		t.Fatalf("ring observed %d iterations, run executed %d", ring.Count(), len(ar.Result.Deltas))
	}
	curve := ring.Curve()
	if len(curve) == 0 {
		t.Fatal("observed T(ε) curve is empty")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Err >= curve[i-1].Err {
			t.Fatalf("curve not strictly decreasing at %d: %g then %g", i, curve[i-1].Err, curve[i].Err)
		}
	}

	// --- the run condenses into a ledger record and survives reopen ---
	fp := st.Dataset.Fingerprint()
	if fp == "" {
		t.Fatal("dataset fingerprint empty")
	}
	rec := obs.Record{
		Kind:       "adaptive",
		Dataset:    obs.DatasetInfo{Fingerprint: fp, Name: st.Dataset.Name, Points: st.Dataset.N()},
		Plan:       ar.Result.PlanName,
		Iterations: ar.Result.Iterations, Converged: ar.Result.Converged,
		FinalDelta: obs.Finite(ar.Result.FinalDelta),
	}
	for _, pt := range curve {
		rec.Curve = append(rec.Curve, obs.CurvePoint{Iter: pt.Iter, Err: pt.Err})
	}
	for _, s := range ar.Switches {
		rec.Switches = append(rec.Switches, obs.SwitchRecord{
			Iter: s.Iter, Clock: obs.Finite(float64(s.Clock)), From: s.From, To: s.To,
			FittedA: obs.Finite(s.FittedA), SpecA: obs.Finite(s.SpecA), Epsilon: obs.Finite(s.Epsilon),
		})
	}
	for _, ev := range ar.Refits {
		rec.Refits = append(rec.Refits, obs.RefitRecord{
			Iter: ev.Iter, Plan: ev.Plan, Action: ev.Action, Reason: ev.Reason,
			FittedA: obs.Finite(ev.FittedA), SpecA: obs.Finite(ev.SpecA), Epsilon: obs.Finite(ev.Epsilon),
		})
	}
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, err := obs.OpenLedger(fault.NewFS(nil, "ledger"), path)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Append(rec); err != nil {
		t.Fatal(err)
	}
	re, err := obs.OpenLedger(fault.NewFS(nil, "ledger"), path)
	if err != nil {
		t.Fatal(err)
	}
	recs := re.Records()
	if len(recs) != 1 {
		t.Fatalf("reopened %d records", len(recs))
	}
	got := recs[0]
	if got.Dataset.Fingerprint != fp || len(got.Curve) == 0 || len(got.Refits) == 0 || len(got.Switches) == 0 {
		t.Fatalf("ledger record lost telemetry: %+v", got)
	}
	if len(got.Curve) != len(rec.Curve) || got.Curve[len(got.Curve)-1] != rec.Curve[len(rec.Curve)-1] {
		t.Fatal("curve did not round-trip bit-exactly")
	}
}
