package planner

import (
	"fmt"
	"math"
	"strings"

	"ml4all/internal/cluster"
	"ml4all/internal/costmodel"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// This file implements mid-flight re-optimization: the optimizer's
// speculative machinery reused at runtime, as the paper's conclusion
// suggests and as adaptive query processors do (cf. Delta's mixed
// cost-based re-costing in PAPERS.md — observed costs for the running plan,
// estimated costs for the alternatives).
//
// The controller trains through the resumable engine.Trainer. Every K
// iterations it re-fits the estimator's T(ε) = a/ε curve on the *observed*
// delta sequence of the running segment (estimator.MonotoneSequence +
// FitInverse — the exact functions speculation uses, now fed real-run data
// instead of sample data), re-costs the remaining work for the incumbent
// with the re-fitted curve and for every other plan of the eleven-plan space
// with its speculative estimate, and switches when an alternative's
// projected remaining cost — including its full switch overhead: job init,
// Stage and (eager) Transform, exactly what starting a new Trainer charges
// the simulator — undercuts the incumbent's by the hysteresis margin.
// Weights and the iteration counter carry across the switch, so step-size
// schedules continue and the model keeps its progress.

// AdaptiveConfig tunes the mid-flight re-optimization controller. Zero
// values take defaults.
type AdaptiveConfig struct {
	// Every is the re-optimization period: a check runs after every
	// Every-th iteration. 0 means 25.
	Every int
	// Hysteresis is the relative margin an alternative's projected
	// remaining cost must undercut the incumbent's by before the
	// controller switches (guarding against estimate noise and plan
	// oscillation). 0 means 0.2; negative disables the margin.
	Hysteresis float64
	// MaxSwitches caps how many times the controller may switch plans.
	// 0 means 3.
	MaxSwitches int
	// MinPoints is the minimum number of monotone error observations the
	// running segment must have produced before a check may act. 0 means 3.
	MinPoints int
	// DeviationFactor gates re-optimization on demonstrated
	// mis-estimation: the controller considers switching only when the
	// re-fitted a exceeds DeviationFactor times the speculative a for the
	// incumbent's algorithm — while speculation is tracking reality, the
	// up-front optimizer decision stands. The default 4 sits above the
	// natural sample-vs-full drift a sound speculation shows (~2-3x) and
	// below the blow-ups genuine mis-estimation produces. 0 means 4;
	// negative disables the gate (every check may switch).
	DeviationFactor float64
	// Seed, Workers and FastMath are the engine options the training
	// segments run with (same semantics as engine.Options). FastMath also
	// flips the controller's re-costing model to fast-tier throughput, so
	// mid-flight comparisons price remaining work at the rates the
	// segments actually execute at.
	Seed     int64
	Workers  int
	FastMath bool

	// Interrupt is polled at the top of every engine Step of every segment
	// (same semantics as engine.Options.Interrupt): the serving layer wires
	// a context's Err here so adaptive jobs cancel between iterations.
	Interrupt func() error

	// Observer, when non-nil, is threaded into every training segment's
	// engine.Options, receiving one IterEvent per iteration across all
	// segments (iteration counters carry across switches, so the stream is
	// globally monotone). nil keeps the engine's zero-overhead path.
	Observer engine.Observer
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Every <= 0 {
		c.Every = 25
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.2
	}
	if c.Hysteresis < 0 {
		c.Hysteresis = 0 // negative means "no margin", not an inverted one
	}
	if c.MaxSwitches <= 0 {
		c.MaxSwitches = 3
	}
	if c.MinPoints <= 0 {
		c.MinPoints = 3
	}
	if c.DeviationFactor == 0 {
		c.DeviationFactor = 4
	}
	return c
}

// SwitchEvent records one executed plan switch and the re-fitted estimate
// that triggered it.
type SwitchEvent struct {
	Iter  int             // global iteration the switch happened after
	Clock cluster.Seconds // sim clock at the switch
	From  string
	To    string
	// FittedA is the re-fitted coefficient of T(ε) = a/ε over the
	// incumbent segment's observed deltas; SpecA is what speculation had
	// predicted for the same algorithm. Their gap is the mis-estimation
	// the switch corrects.
	FittedA float64
	SpecA   float64
	// Epsilon is the best (smallest) observed delta at switch time — the
	// error level the successor plan inherits.
	Epsilon float64
	// IncumbentRemaining and AltRemaining are the projected remaining
	// costs that were compared (AltRemaining includes switch overhead).
	IncumbentRemaining cluster.Seconds
	AltRemaining       cluster.Seconds
}

// PlanCost is one candidate's projection inside a re-fit check: the curve
// coefficient the re-costing used (observed for the incumbent's algorithm,
// speculative — possibly ratcheted — for the others), the projected
// remaining iterations from the current error level, and the projected
// remaining cost (including switch overhead for alternatives).
type PlanCost struct {
	Plan      string
	A         float64
	Remaining float64
	Cost      cluster.Seconds
}

// RefitEvent is the structured record of one re-optimization check — the
// machine-readable counterpart of AdaptiveResult.Log, persisted into the run
// ledger so past runs' planner decisions can be replayed and audited.
type RefitEvent struct {
	Iter    int             // global iteration the check ran after
	Clock   cluster.Seconds // sim clock at the check
	Plan    string          // incumbent plan at check time
	Points  int             // monotone observations available to the fit
	FittedA float64         // re-fitted a (0 when the check bailed before fitting)
	SpecA   float64         // speculative a for the incumbent's algorithm
	Epsilon float64         // best observed delta at check time
	// Remaining and Cost are the incumbent's own projection at the check
	// (populated once the check got far enough to compute them).
	Remaining float64
	Cost      cluster.Seconds
	// Costs lists the per-plan projections of every alternative the check
	// re-costed.
	Costs []PlanCost
	// Action is the decision taken: "budget-exhausted", "too-few-points",
	// "converging", "deviation-gate", "endgame", "no-alternative",
	// "hysteresis-keep" or "switch".
	Action string
	// Reason is the human-readable explanation (mirrors the Log line).
	Reason string
}

// AdaptiveResult is the outcome of an adaptive training run.
type AdaptiveResult struct {
	// Result merges the training segments: concatenated deltas, the final
	// weights and termination flags, total training time (excluding the
	// initial speculation, like engine.Run) and final accounting. PlanName
	// chains the executed plans, e.g. "MGD-lazy-shuffle→BGD".
	Result *engine.Result
	// Decision is the up-front optimizer decision the run started from.
	Decision *Decision
	// Plans lists the executed plan names in order.
	Plans []string
	// Switches records every executed switch.
	Switches []SwitchEvent
	// Refits records every re-optimization check as a structured event
	// (including the ones that kept the incumbent, with the reason). The
	// budget-exhausted state is recorded once, like its Log line.
	Refits []RefitEvent
	// Checks counts how many re-optimization checks ran.
	Checks int
	// Log is the human-readable decision log: one line per check, showing
	// the re-fitted estimate and the costs compared.
	Log []string
}

// segmentCost prices rem iterations of a plan's steady-state loop. The
// remaining-iteration projection itself lives in
// estimator.RemainingIterations, shared with the observability layer's
// convergence-ETA computation.
func segmentCost(br costmodel.Breakdown, rem float64) cluster.Seconds {
	if math.IsInf(rem, 0) {
		return cluster.Seconds(math.Inf(1))
	}
	return cluster.Seconds(rem) * br.Iteration
}

// switchCost is the one-time overhead of standing a new plan up mid-run:
// the job init, Stage and (eager) Transform a fresh Trainer charges.
func switchCost(br costmodel.Breakdown) cluster.Seconds {
	return br.JobInit + br.Stage + br.Transform
}

// RunAdaptive optimizes, then trains with mid-flight re-optimization: the
// optimizer's chosen plan starts, and every cfg.Every iterations the
// controller re-fits the iteration estimate on observed deltas and switches
// to a cheaper plan when the re-costing says so, carrying weights and the
// iteration counter (and thus the step-size schedule) across the switch. The
// switch overhead — job init, staging, eager transform of the new plan — is
// charged to sim like any fresh plan start. Speculation time is on sim's
// clock, exactly as Choose charges it; Result.Time covers training only.
func RunAdaptive(sim *cluster.Sim, store *storage.Store, p gd.Params, opts Options, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	cfg = cfg.withDefaults()
	dec, err := Choose(sim, store, p, opts)
	if err != nil {
		return nil, err
	}
	model := costmodel.New(store, sim.Cfg)
	model.FastMath = cfg.FastMath
	eopts := engine.Options{Seed: cfg.Seed, Workers: cfg.Workers, FastMath: cfg.FastMath, Interrupt: cfg.Interrupt, Observer: cfg.Observer}

	incumbent := dec.Best.Plan
	out := &AdaptiveResult{Decision: dec, Plans: []string{incumbent.Name()}}
	merged := &engine.Result{}

	// observedA ratchets the re-fitted curve coefficient per algorithm: an
	// algorithm whose observed curve was ever worse than its speculative
	// one is never trusted at the speculative estimate again. disqualified
	// marks algorithms abandoned for demonstrated mis-estimation: their
	// speculative curve is known-wrong and their observed curve never
	// covered the target regime, so re-entering on either extrapolation
	// would repeat the very mistake the controller exists to correct. The
	// two are the one-sided memory that keeps re-optimization from
	// oscillating.
	observedA := map[gd.Algo]float64{}
	disqualified := map[gd.Algo]bool{}

	trainStart := sim.Now()
	tr, err := engine.NewTrainer(sim, store, &incumbent, eopts)
	if err != nil {
		return nil, err
	}
	segStartIter := 0
	capLogged := false

	for !tr.Done() {
		if err := tr.Step(); err != nil {
			return nil, err
		}
		if tr.Done() || tr.Iteration()%cfg.Every != 0 {
			continue
		}
		if len(out.Switches) >= cfg.MaxSwitches {
			// The switch budget is spent: further re-fits could change
			// nothing, so ride the incumbent out (logged once).
			if !capLogged {
				reason := fmt.Sprintf("switch budget (%d) exhausted — riding out %s",
					cfg.MaxSwitches, incumbent.Name())
				out.Log = append(out.Log, fmt.Sprintf("iter %d: %s", tr.Iteration(), reason))
				out.Refits = append(out.Refits, RefitEvent{
					Iter: tr.Iteration(), Clock: sim.Now(), Plan: incumbent.Name(),
					Action: "budget-exhausted", Reason: reason,
				})
				capLogged = true
			}
			continue
		}

		// --- re-optimization check ---
		out.Checks++
		globalIter := tr.Iteration()
		segIters := globalIter - segStartIter
		seq := estimator.MonotoneSequence(tr.Deltas())
		// ev accumulates the structured record of this check; every exit
		// path below stamps an Action and appends it to out.Refits.
		ev := RefitEvent{
			Iter: globalIter, Clock: sim.Now(), Plan: incumbent.Name(),
			Points: len(seq),
		}
		if len(seq) < cfg.MinPoints {
			ev.Action = "too-few-points"
			ev.Reason = fmt.Sprintf("%d monotone points, too few to refit", len(seq))
			out.Refits = append(out.Refits, ev)
			out.Log = append(out.Log, fmt.Sprintf("iter %d: %s", globalIter, ev.Reason))
			continue
		}
		epsNow := seq[len(seq)-1].Err
		ev.Epsilon = epsNow
		if epsNow <= incumbent.Tolerance {
			ev.Action = "converging"
			ev.Reason = "best observed delta at or below tolerance"
			out.Refits = append(out.Refits, ev)
			continue // converging as we speak
		}
		// Append the current position (segIters, epsNow) before fitting:
		// the monotone sequence records only improvements, so a stalled
		// plan would otherwise keep its optimistic early fit forever. The
		// appended point drags the fitted a up exactly when progress has
		// stopped — the signal the whole controller exists to catch.
		obs := append(append([]estimator.Point(nil), seq...), estimator.Point{Iter: segIters, Err: epsNow})
		aObs, ferr := estimator.FitInverse(obs)
		if ferr != nil {
			aObs = math.Inf(1)
		}
		specA := math.Inf(1)
		if est, ok := dec.Estimates[incumbent.Algorithm]; ok {
			specA = est.A
		}
		if !math.IsInf(aObs, 0) && aObs > observedA[incumbent.Algorithm] {
			observedA[incumbent.Algorithm] = aObs
		}
		ev.FittedA = aObs
		ev.SpecA = specA

		// Deviation gate: while the observed curve tracks the speculative
		// one, the up-front decision stands — no switch chatter.
		if cfg.DeviationFactor > 0 && !math.IsInf(specA, 0) && aObs <= cfg.DeviationFactor*specA {
			ev.Action = "deviation-gate"
			ev.Reason = fmt.Sprintf(
				"refit a=%.4g within %.2gx of spec a=%.4g — speculation on track, keep %s",
				aObs, cfg.DeviationFactor, specA, incumbent.Name())
			out.Refits = append(out.Refits, ev)
			out.Log = append(out.Log, fmt.Sprintf("iter %d: %s", globalIter, ev.Reason))
			continue
		}

		brInc := model.Breakdown(incumbent)
		remInc := estimator.RemainingIterations(aObs, incumbent.Tolerance, epsNow)
		costInc := segmentCost(brInc, remInc)
		ev.Remaining = remInc
		ev.Cost = costInc

		// Endgame guard: when the incumbent is projected to finish within
		// one check period, a switch could never be re-evaluated before
		// the incumbent would have converged anyway — ride it out.
		if remInc <= float64(cfg.Every) {
			ev.Action = "endgame"
			ev.Reason = fmt.Sprintf("%s projected to finish in %.0f iters — ride it out",
				incumbent.Name(), remInc)
			out.Refits = append(out.Refits, ev)
			out.Log = append(out.Log, fmt.Sprintf("iter %d: %s", globalIter, ev.Reason))
			continue
		}

		// Re-cost the rest of the space: observed curve for the
		// incumbent's algorithm, speculative curves for the others (the
		// mixed re-costing). All candidates inherit the current error
		// level, so their remaining-iteration projections skip the curve
		// head the incumbent already descended.
		bestCost := cluster.Seconds(math.Inf(1))
		var bestPlan gd.Plan
		found := false
		for _, cand := range Space(p) {
			if cand.Name() == incumbent.Name() {
				continue
			}
			a := aObs
			if cand.Algorithm != incumbent.Algorithm {
				if disqualified[cand.Algorithm] {
					continue
				}
				est, ok := dec.Estimates[cand.Algorithm]
				if !ok {
					continue // no estimate (e.g. FixedIterations): cannot re-cost
				}
				a = est.A
				// Trust past observation over the speculation whenever an
				// earlier segment already ran this algorithm and refit a
				// worse curve.
				if ratchet, seen := observedA[cand.Algorithm]; seen && ratchet > a {
					a = ratchet
				}
			}
			rem := estimator.RemainingIterations(a, cand.Tolerance, epsNow)
			// A candidate whose projection does not fit the remaining
			// iteration budget cannot reach the tolerance at all —
			// switching to it would trade a slow plan for a hopeless one.
			if budget := float64(cand.MaxIter - globalIter); cand.MaxIter > 0 && rem > budget {
				continue
			}
			br := model.Breakdown(cand)
			cost := switchCost(br) + segmentCost(br, rem)
			ev.Costs = append(ev.Costs, PlanCost{
				Plan: cand.Name(), A: a, Remaining: rem, Cost: cost,
			})
			if cost < bestCost {
				bestCost, bestPlan, found = cost, cand, true
			}
		}
		if !found {
			ev.Action = "no-alternative"
			ev.Reason = "no alternative can be re-costed"
			out.Refits = append(out.Refits, ev)
			out.Log = append(out.Log, fmt.Sprintf("iter %d: %s", globalIter, ev.Reason))
			continue
		}

		line := fmt.Sprintf(
			"iter %d: refit a=%.4g (spec a=%.4g), eps=%.4g; %s remaining %.4gs; best alt %s remaining %.4gs incl switch",
			globalIter, aObs, specA, epsNow,
			incumbent.Name(), float64(costInc), bestPlan.Name(), float64(bestCost))

		if !(float64(bestCost) < float64(costInc)*(1-cfg.Hysteresis)) {
			ev.Action = "hysteresis-keep"
			ev.Reason = line + " -> keep"
			out.Refits = append(out.Refits, ev)
			out.Log = append(out.Log, ev.Reason)
			continue
		}

		// --- switch: close the segment, carry weights and counter ---
		ev.Action = "switch"
		ev.Reason = line + " -> switch"
		out.Refits = append(out.Refits, ev)
		out.Log = append(out.Log, ev.Reason)
		out.Switches = append(out.Switches, SwitchEvent{
			Iter: globalIter, Clock: sim.Now(),
			From: incumbent.Name(), To: bestPlan.Name(),
			FittedA: aObs, SpecA: specA, Epsilon: epsNow,
			IncumbentRemaining: costInc, AltRemaining: bestCost,
		})
		seg := tr.Finish()
		merged.Deltas = append(merged.Deltas, seg.Deltas...)
		if bestPlan.Algorithm != incumbent.Algorithm {
			disqualified[incumbent.Algorithm] = true
		}

		next := bestPlan
		segOpts := eopts
		segOpts.InitWeights = tr.Weights().Clone()
		segOpts.InitIter = globalIter
		incumbent = next
		out.Plans = append(out.Plans, incumbent.Name())
		tr, err = engine.NewTrainer(sim, store, &incumbent, segOpts)
		if err != nil {
			return nil, err
		}
		segStartIter = globalIter
	}

	last := tr.Finish()
	merged.PlanName = strings.Join(out.Plans, "→")
	merged.Deltas = append(merged.Deltas, last.Deltas...)
	merged.Weights = last.Weights
	merged.Iterations = last.Iterations
	merged.Converged = last.Converged
	merged.Budgeted = last.Budgeted
	merged.Diverged = last.Diverged
	merged.FinalDelta = last.FinalDelta
	merged.Time = sim.Now() - trainStart
	merged.Acct = sim.Acct
	out.Result = merged
	return out, nil
}
