// Package planner is the optimizer's top: it enumerates the GD plan space of
// Section 6 (Figure 5: one BGD plan, five SGD plans, five MGD plans),
// obtains per-algorithm iteration estimates from the speculative estimator,
// prices every plan with the Section 7 cost model, and picks the cheapest.
// Like a database optimizer, its first duty is avoiding the worst plans.
package planner

import (
	"fmt"
	"sort"

	"ml4all/internal/cluster"
	"ml4all/internal/costmodel"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// Space returns the eleven plans of Figure 5 for the given task parameters:
// BGD (eager, no sampling); SGD and MGD each with eager×{bernoulli, random,
// shuffle} and lazy×{random, shuffle} (lazy+bernoulli is discarded because
// Bernoulli scans everything anyway).
func Space(p gd.Params) []gd.Plan {
	plans := []gd.Plan{gd.NewBGD(p)}
	for _, algo := range []gd.Algo{gd.SGD, gd.MGD} {
		build := func(tp gd.TransformPlacement, sk gd.SamplingKind) gd.Plan {
			if algo == gd.SGD {
				return gd.NewSGD(p, tp, sk)
			}
			return gd.NewMGD(p, tp, sk)
		}
		plans = append(plans,
			build(gd.Eager, gd.Bernoulli),
			build(gd.Eager, gd.RandomPartition),
			build(gd.Eager, gd.ShuffledPartition),
			build(gd.Lazy, gd.RandomPartition),
			build(gd.Lazy, gd.ShuffledPartition),
		)
	}
	return plans
}

// Choice is one costed plan in the search result.
type Choice struct {
	Plan       gd.Plan
	Iterations int             // estimated T(εd) for the plan's algorithm, capped at MaxIter
	Cost       cluster.Seconds // estimated total training time
	// Satisfies reports whether the estimated iteration count fits within
	// the plan's MaxIter — i.e. whether the plan is expected to actually
	// reach the requested tolerance. Plans that cannot satisfy epsilon rank
	// after plans that can, regardless of cost: the user asked for a
	// tolerance, and a cheap plan that never reaches it is not a bargain.
	Satisfies bool
}

// Decision is the optimizer's output: the chosen plan, the full ranked
// search space and the speculation overhead that producing it cost.
type Decision struct {
	Best      Choice
	Ranked    []Choice // ascending by cost
	Estimates map[gd.Algo]estimator.Estimate
	SpecTime  cluster.Seconds // simulated time spent speculating
}

// Options tunes the optimizer.
type Options struct {
	Estimator estimator.Config
	// FixedIterations, when positive, skips speculation entirely and costs
	// every plan at that iteration count — the paper reports sub-100ms
	// optimization for this case (Section 8.3).
	FixedIterations int
	// FastMath prices batched compute at the fast kernel tier's measured
	// throughput (costmodel.Model.FastMath) — set it when the chosen plan
	// will execute with engine.Options.FastMath, so the optimizer ranks the
	// eleven-plan space under the rates the run will actually see.
	FastMath bool
	// Span, when non-nil, brackets the optimizer's internal phases for
	// tracing: Choose calls Span(name) at a phase start and the returned
	// func at its end (currently one "speculate" span per speculated
	// algorithm). nil costs nothing. The hook is a plain closure rather
	// than an obs type so the planner stays import-free of the
	// observability layer.
	Span func(name string) func()
}

// Choose runs the full optimization: speculate (unless iterations are fixed),
// cost all eleven plans, return the cheapest. The speculation time is charged
// to sim's clock, so end-to-end measurements include the optimizer's own
// overhead exactly as Figure 8 does.
func Choose(sim *cluster.Sim, store *storage.Store, p gd.Params, opts Options) (*Decision, error) {
	plans := Space(p)
	dec := &Decision{Estimates: map[gd.Algo]estimator.Estimate{}}
	model := costmodel.New(store, sim.Cfg)
	model.FastMath = opts.FastMath

	iterFor := func(plan gd.Plan) (t int, satisfies bool, err error) {
		if opts.FixedIterations > 0 {
			return opts.FixedIterations, true, nil
		}
		est, ok := dec.Estimates[plan.Algorithm]
		if !ok {
			var end func()
			if opts.Span != nil {
				end = opts.Span("speculate")
			}
			est, err = estimator.Speculate(plan, store, opts.Estimator)
			if end != nil {
				end()
			}
			if err != nil {
				return 0, false, err
			}
			dec.Estimates[plan.Algorithm] = est
			dec.SpecTime += est.SpecTime
		}
		t = est.Iterations(plan.Tolerance)
		satisfies = plan.MaxIter <= 0 || t <= plan.MaxIter
		if plan.MaxIter > 0 && t > plan.MaxIter {
			t = plan.MaxIter
		}
		return t, satisfies, nil
	}

	for _, plan := range plans {
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		t, satisfies, err := iterFor(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: estimating %s: %w", plan.Name(), err)
		}
		dec.Ranked = append(dec.Ranked, Choice{
			Plan:       plan,
			Iterations: t,
			Cost:       model.PlanCost(plan, t),
			Satisfies:  satisfies,
		})
	}
	sort.SliceStable(dec.Ranked, func(i, j int) bool {
		a, b := dec.Ranked[i], dec.Ranked[j]
		if a.Satisfies != b.Satisfies {
			return a.Satisfies
		}
		return a.Cost < b.Cost
	})
	dec.Best = dec.Ranked[0]

	if opts.FixedIterations <= 0 {
		// One driver job collects the speculation sample (the ~4s overhead
		// the paper attributes to Spark job init), then the speculation
		// itself runs on the driver.
		sim.JobInit()
		sim.Advance(dec.SpecTime)
	}
	return dec, nil
}

// CostAll prices every plan in the space at a fixed iteration count without
// speculating — the Figure 7(a) experiment and tests use it.
func CostAll(store *storage.Store, cfg cluster.Config, p gd.Params, iterations int) []Choice {
	model := costmodel.New(store, cfg)
	var out []Choice
	for _, plan := range Space(p) {
		out = append(out, Choice{
			Plan:       plan,
			Iterations: iterations,
			Cost:       model.PlanCost(plan, iterations),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// EstimateFor exposes a single-algorithm estimate (Figure 6 compares these
// against real runs per tolerance).
func EstimateFor(store *storage.Store, p gd.Params, algo gd.Algo, cfg estimator.Config) (estimator.Estimate, error) {
	plan, err := gd.ForAlgo(p, algo)
	if err != nil {
		return estimator.Estimate{}, err
	}
	return estimator.Speculate(plan, store, cfg)
}
