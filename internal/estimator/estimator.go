// Package estimator implements the paper's speculation-based iterations
// estimator (Section 5, Algorithm 1): run a GD algorithm on a small sample of
// the dataset under a time budget until a loose speculation tolerance εs,
// record the error sequence {(i, ε_i)}, fit T(ε) = a/ε, and extrapolate the
// iterations needed for the user's tolerance εd. The approach works for any
// convex loss, any GD variant and any step size because the fit is learned
// purely from the observed sequence.
package estimator

import (
	"fmt"
	"math"

	"ml4all/internal/cluster"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// Config tunes Algorithm 1. Zero values take the paper's defaults.
type Config struct {
	SampleSize    int             // |D'|; paper default 1000
	SpecTolerance float64         // εs; paper default 0.05 (0.1 in Section 8)
	TimeBudget    cluster.Seconds // B; paper default 1 min (10 s in Section 8)
	Seed          int64
	// Workers sizes the engine's worker pool for speculation runs (0 =
	// GOMAXPROCS, 1 = serial). It never changes the estimate — speculation
	// is worker-count invariant like any engine run — but callers pinning
	// Workers: 1 for stateful UDFs must pin it here too, which the public
	// System does automatically.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.SampleSize <= 0 {
		c.SampleSize = 1000
	}
	if c.SpecTolerance <= 0 {
		c.SpecTolerance = 0.05
	}
	if c.TimeBudget <= 0 {
		c.TimeBudget = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Point is one observation of the error sequence: after iteration Iter the
// algorithm had reached tolerance Err.
type Point struct {
	Iter int
	Err  float64
}

// Estimate is the outcome of speculating one GD algorithm.
type Estimate struct {
	Algo     gd.Algo
	A        float64         // fitted coefficient of T(ε) = a/ε
	Sequence []Point         // monotone error sequence observed on the sample
	SpecTime cluster.Seconds // simulated time the speculation run took
	// Exact, when >= 0, records that the sample run itself already reached
	// the requested tolerance after this many iterations, so Iterations
	// reports observation instead of extrapolation.
	Exact int
}

// Iterations returns T(εd), the estimated iterations to reach tolerance εd.
func (e Estimate) Iterations(eps float64) int {
	if eps <= 0 {
		return math.MaxInt32
	}
	if e.Exact >= 0 {
		if len(e.Sequence) > 0 && e.Sequence[len(e.Sequence)-1].Err <= eps {
			return e.Exact
		}
	}
	t := e.A / eps
	if t < 1 {
		return 1
	}
	if t > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(t))
}

// FitInverse fits T(ε) = a/ε to an error sequence by least squares on
// i ≈ a/ε_i, which has the closed form a = Σ(i/ε_i) / Σ(1/ε_i²). Points with
// non-positive error are skipped.
func FitInverse(seq []Point) (a float64, err error) {
	var num, den float64
	for _, p := range seq {
		if p.Err <= 0 {
			continue
		}
		inv := 1 / p.Err
		num += float64(p.Iter) * inv
		den += inv * inv
	}
	if den == 0 {
		return 0, fmt.Errorf("estimator: no usable points to fit")
	}
	return num / den, nil
}

// RemainingIterations projects how many more iterations a T(ε) = a/ε
// process needs to go from error level now to target eps. Going from scratch
// the head of the curve is cheap and the tail expensive, so the projection is
// a·(1/eps − 1/now) — the iterations a successor plan saves by inheriting an
// incumbent's progress are exactly the a/now head it skips. The result is
// ceiled and clamped to at least 1; a non-finite or non-positive a yields
// +Inf (unfittable) or 0 (nothing to do) respectively.
func RemainingIterations(a, eps, now float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	if math.IsInf(a, 0) || a <= 0 {
		if a <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	rem := a / eps
	if now > 0 && !math.IsInf(now, 0) {
		rem -= a / now
	}
	if rem < 1 {
		rem = 1
	}
	return math.Ceil(rem)
}

// MonotoneSequence converts a raw per-iteration delta trace into the
// monotone "reached tolerance" sequence Algorithm 1 records: ε_i is the best
// (smallest) delta seen up to iteration i, emitted only when it improves.
func MonotoneSequence(deltas []float64) []Point {
	var seq []Point
	best := math.Inf(1)
	for i, d := range deltas {
		if d < best && d > 0 && !math.IsInf(d, 0) {
			best = d
			seq = append(seq, Point{Iter: i + 1, Err: d})
		}
	}
	return seq
}

// Speculate runs Algorithm 1 for one plan: sample the dataset, run the plan
// on the sample on a local single-core simulator until εs or the budget, fit
// the curve. The simulated time the speculation consumed is returned inside
// the Estimate so the optimizer can charge it to the main clock.
func Speculate(plan gd.Plan, store *storage.Store, cfg Config) (Estimate, error) {
	cfg = cfg.withDefaults()
	est := Estimate{Algo: plan.Algorithm, Exact: -1}

	sample := store.Dataset.Sample(cfg.SampleSize, cfg.Seed)
	// The sample is tiny; lay it out with the same page size but a single
	// partition, as the paper's driver-side speculation would see it.
	layout := store.Layout
	layout.PartitionBytes = 1 << 62
	sampleStore, err := storage.Build(sample, layout)
	if err != nil {
		return est, err
	}

	specPlan := plan
	specPlan.Tolerance = cfg.SpecTolerance
	specPlan.MaxIter = 1 << 20 // the budget, not the cap, ends speculation
	specPlan.Mode = gd.CentralizedMode

	simCfg := cluster.SpeculationLocal()
	simCfg.Seed = cfg.Seed
	sim := cluster.New(simCfg)

	res, err := engine.Run(sim, sampleStore, &specPlan, engine.Options{
		TimeBudget: cfg.TimeBudget,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
	})
	if err != nil {
		return est, err
	}
	est.SpecTime = res.Time
	est.Sequence = MonotoneSequence(res.Deltas)
	if len(est.Sequence) == 0 {
		// Nothing improved: assume the worst and let the plan's MaxIter
		// bound the cost estimate.
		est.A = math.Inf(1)
		return est, nil
	}
	if res.Converged {
		est.Exact = res.Iterations
	}
	a, err := FitInverse(est.Sequence)
	if err != nil {
		return est, err
	}
	est.A = a
	return est, nil
}

// SpeculateAll runs the estimator for each of the given plans (typically one
// per GD algorithm: BGD, MGD, SGD) and returns the estimates in order, plus
// the total simulated speculation time. Per the paper, MGD and SGD draw
// their samples from the same D' the BGD speculation uses, which here is
// guaranteed by sharing cfg.Seed.
func SpeculateAll(plans []gd.Plan, store *storage.Store, cfg Config) ([]Estimate, cluster.Seconds, error) {
	ests := make([]Estimate, 0, len(plans))
	var total cluster.Seconds
	for _, p := range plans {
		e, err := Speculate(p, store, cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("estimator: speculating %s: %w", p.Name(), err)
		}
		ests = append(ests, e)
		total += e.SpecTime
	}
	return ests, total, nil
}
