package estimator

import "math"

// Rate classifies the convergence behaviour of an error sequence. The paper
// (Section 5) observes that gradient methods on convex functions exhibit
// three standard rates — linear, superlinear of order p, quadratic — all
// identifiable purely from the error sequence; the estimator's curve fit is
// justified by that observation, and this classifier makes it inspectable.
type Rate int

// Convergence rates.
const (
	RateUnknown Rate = iota
	RateSublinear
	RateLinear
	RateSuperlinear
	RateQuadratic
)

// String returns the rate name.
func (r Rate) String() string {
	switch r {
	case RateSublinear:
		return "sublinear"
	case RateLinear:
		return "linear"
	case RateSuperlinear:
		return "superlinear"
	case RateQuadratic:
		return "quadratic"
	default:
		return "unknown"
	}
}

// ClassifyRate inspects the tail of a monotone error sequence and reports
// its convergence rate. The test is the standard one: with
// q_i = ε_{i+1}/ε_i, a (roughly) constant q < 1 means linear convergence;
// q → 0 means superlinear, and ε_{i+1}/ε_i² bounded means quadratic;
// q → 1 from below means sublinear (the O(1/i) regime of plain GD, where
// the paper's a/ε fit is the right model).
func ClassifyRate(seq []Point) Rate {
	if len(seq) < 4 {
		return RateUnknown
	}
	tail := seq
	if len(tail) > 12 {
		tail = tail[len(tail)-12:]
	}
	var qs []float64
	var quadRatios []float64
	for i := 0; i+1 < len(tail); i++ {
		e0, e1 := tail[i].Err, tail[i+1].Err
		if e0 <= 0 || e1 <= 0 {
			continue
		}
		qs = append(qs, e1/e0)
		quadRatios = append(quadRatios, e1/(e0*e0))
	}
	if len(qs) < 3 {
		return RateUnknown
	}
	mean := 0.0
	for _, q := range qs {
		mean += q
	}
	mean /= float64(len(qs))

	// Quadratic: ε_{i+1}/ε_i² stays bounded by a modest constant while the
	// plain ratio collapses.
	bounded := true
	for _, r := range quadRatios {
		if r > 10 {
			bounded = false
			break
		}
	}
	switch {
	case bounded && mean < 0.2:
		return RateQuadratic
	case mean < 0.5:
		return RateSuperlinear
	case mean < 0.95:
		return RateLinear
	case mean < 1.0000001:
		return RateSublinear
	default:
		return RateUnknown
	}
}

// HalfLife returns the number of iterations the tail of the sequence needs to
// halve its error — a robust, unitless summary used in reports. Returns +Inf
// when the sequence never halves.
func HalfLife(seq []Point) float64 {
	if len(seq) < 2 {
		return math.Inf(1)
	}
	first, last := seq[0], seq[len(seq)-1]
	if last.Err <= 0 || first.Err <= 0 || last.Err >= first.Err {
		return math.Inf(1)
	}
	halvings := math.Log2(first.Err / last.Err)
	return float64(last.Iter-first.Iter) / halvings
}
