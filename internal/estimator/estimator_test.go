package estimator

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ml4all/internal/gd"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func TestFitInverseRecoversExactCurve(t *testing.T) {
	// Error sequence exactly on T(eps) = a/eps must recover a.
	const a = 250.0
	var seq []Point
	for i := 1; i <= 40; i++ {
		seq = append(seq, Point{Iter: i, Err: a / float64(i)})
	}
	got, err := FitInverse(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-a)/a > 1e-9 {
		t.Fatalf("fitted a = %g, want %g", got, a)
	}
}

func TestFitInverseRecoveryProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(17)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(1 + 1000*r.Float64())
		},
	}
	f := func(a float64) bool {
		var seq []Point
		for i := 2; i <= 30; i++ {
			seq = append(seq, Point{Iter: i, Err: a / float64(i)})
		}
		got, err := FitInverse(seq)
		return err == nil && math.Abs(got-a)/a < 1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFitInverseToleratesNoise(t *testing.T) {
	const a = 100.0
	r := rand.New(rand.NewSource(4))
	var seq []Point
	for i := 1; i <= 60; i++ {
		noisy := a / float64(i) * (1 + 0.1*r.NormFloat64())
		if noisy <= 0 {
			continue
		}
		seq = append(seq, Point{Iter: i, Err: noisy})
	}
	got, err := FitInverse(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got < a/2 || got > a*2 {
		t.Fatalf("noisy fit a = %g, want within 2x of %g", got, a)
	}
}

func TestFitInverseRejectsEmptyAndNonPositive(t *testing.T) {
	if _, err := FitInverse(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := FitInverse([]Point{{Iter: 1, Err: 0}, {Iter: 2, Err: -3}}); err == nil {
		t.Error("non-positive errors accepted")
	}
}

func TestMonotoneSequence(t *testing.T) {
	deltas := []float64{5, 3, 4, 2, 2, 1, math.Inf(1), 0.5}
	seq := MonotoneSequence(deltas)
	want := []Point{{1, 5}, {2, 3}, {4, 2}, {6, 1}, {8, 0.5}}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("MonotoneSequence = %v, want %v", seq, want)
	}
	// Strictly decreasing invariant.
	for i := 1; i < len(seq); i++ {
		if seq[i].Err >= seq[i-1].Err || seq[i].Iter <= seq[i-1].Iter {
			t.Fatalf("sequence not strictly monotone at %d: %v", i, seq)
		}
	}
}

func TestEstimateIterations(t *testing.T) {
	e := Estimate{A: 10, Exact: -1}
	if got := e.Iterations(0.1); got != 100 {
		t.Fatalf("Iterations(0.1) = %d, want 100", got)
	}
	if got := e.Iterations(100); got != 1 {
		t.Fatalf("tiny estimates must floor at 1, got %d", got)
	}
	if got := e.Iterations(0); got != math.MaxInt32 {
		t.Fatalf("Iterations(0) = %d, want MaxInt32", got)
	}
	// Exact observation short-circuits extrapolation when the sample run
	// already reached the requested tolerance.
	e = Estimate{A: 1e9, Exact: 42, Sequence: []Point{{42, 0.005}}}
	if got := e.Iterations(0.01); got != 42 {
		t.Fatalf("exact short-circuit = %d, want 42", got)
	}
	// ... but not for tighter tolerances than observed.
	if got := e.Iterations(0.001); got == 42 {
		t.Fatal("exact short-circuit applied beyond observed tolerance")
	}
}

func TestSpeculateOnRealPlan(t *testing.T) {
	spec, err := synth.ByName("covtype", 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.N = 4000 // keep the test fast
	ds := synth.MustGenerate(spec)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 1000, Lambda: 0.05}
	plan := gd.NewBGD(p)
	est, err := Speculate(plan, st, Config{SampleSize: 500, SpecTolerance: 0.05, TimeBudget: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.Algo != gd.BGD {
		t.Fatalf("algo = %v", est.Algo)
	}
	if len(est.Sequence) < 3 {
		t.Fatalf("speculation observed only %d points", len(est.Sequence))
	}
	if est.SpecTime <= 0 || est.SpecTime > 11 {
		t.Fatalf("SpecTime = %g, want (0, budget+1]", est.SpecTime)
	}
	it := est.Iterations(0.01)
	if it < 1 || it > 100000 {
		t.Fatalf("estimated iterations = %d, absurd", it)
	}
}

func TestSpeculateAllSharesOrder(t *testing.T) {
	spec, err := synth.ByName("adult", 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := synth.MustGenerate(spec)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 500, Lambda: 0.05}
	plans := []gd.Plan{gd.NewBGD(p), gd.NewMGD(p, gd.Eager, gd.ShuffledPartition), gd.NewSGD(p, gd.Eager, gd.ShuffledPartition)}
	ests, total, err := SpeculateAll(plans, st, Config{SampleSize: 400, TimeBudget: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates = %d, want 3", len(ests))
	}
	var sum float64
	for i, e := range ests {
		if e.Algo != plans[i].Algorithm {
			t.Fatalf("estimate %d for %v, want %v", i, e.Algo, plans[i].Algorithm)
		}
		sum += float64(e.SpecTime)
	}
	if math.Abs(sum-float64(total)) > 1e-9 {
		t.Fatalf("total %g != sum %g", total, sum)
	}
}

func TestClassifyRate(t *testing.T) {
	mk := func(f func(i int) float64, n int) []Point {
		var seq []Point
		for i := 1; i <= n; i++ {
			seq = append(seq, Point{Iter: i, Err: f(i)})
		}
		return seq
	}
	if got := ClassifyRate(mk(func(i int) float64 { return 1 / float64(i) }, 30)); got != RateSublinear {
		t.Errorf("1/i sequence = %v, want sublinear", got)
	}
	if got := ClassifyRate(mk(func(i int) float64 { return math.Pow(0.7, float64(i)) }, 30)); got != RateLinear {
		t.Errorf("0.7^i sequence = %v, want linear", got)
	}
	quad := []Point{}
	e := 0.4
	for i := 1; i <= 8; i++ {
		quad = append(quad, Point{Iter: i, Err: e})
		e = e * e
	}
	if got := ClassifyRate(quad); got != RateQuadratic {
		t.Errorf("squared sequence = %v, want quadratic", got)
	}
	if got := ClassifyRate(nil); got != RateUnknown {
		t.Errorf("empty sequence = %v, want unknown", got)
	}
}

func TestHalfLife(t *testing.T) {
	seq := []Point{{1, 8}, {4, 1}} // 3 halvings over 3 iterations
	if got := HalfLife(seq); math.Abs(got-1) > 1e-12 {
		t.Fatalf("HalfLife = %g, want 1", got)
	}
	if !math.IsInf(HalfLife([]Point{{1, 2}}), 1) {
		t.Fatal("single point should give +Inf")
	}
	if !math.IsInf(HalfLife([]Point{{1, 1}, {5, 2}}), 1) {
		t.Fatal("non-decreasing should give +Inf")
	}
}
