// Package synth generates the synthetic stand-ins for the paper's Table 2
// dataset suite. The real LIBSVM files (adult … higgs) and the authors'
// 5-160 GB dense SVM data are unavailable offline, so each generator
// reproduces the dataset's statistical *shape* — cardinality, dimensionality,
// density, task, label balance, separability and (for rcv1) skew — at a
// configurable scale factor. The figures' qualitative behaviour depends on
// exactly those properties plus the byte size relative to partitions and
// cache, all of which survive scaling.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Spec describes a synthetic dataset to generate.
type Spec struct {
	Name    string
	Task    data.TaskKind
	N       int     // number of points
	D       int     // number of features
	Density float64 // fraction of non-zero features per point (1 => dense)
	// Noise is the label-noise level: the probability of flipping a
	// classification label, or the stddev of additive regression noise.
	Noise float64
	// Skew, in [0,1), orders points so that label/feature distribution
	// drifts along the dataset — consecutive points (hence partitions)
	// become correlated, which is what makes shuffled-partition sampling
	// lose accuracy on rcv1 (Figure 12).
	Skew float64
	// Margin scales the ground-truth weight vector; larger margins make the
	// task easier (fewer GD iterations to a given tolerance).
	Margin float64
	// Gap, for classification tasks, rejects points whose raw margin
	// |w*·x| falls below Gap standard deviations of the margin
	// distribution, carving a separation band around the boundary. Larger
	// gaps make the classes more separable: stochastic plans then draw
	// zero-gradient (or near-zero) points often and converge in few
	// iterations, the behaviour the paper's SVM datasets exhibit (Table 4:
	// 4-8 SGD iterations on svm1-svm3).
	Gap float64
	// Binary generates 0/1 feature values (the shape of adult/covtype's
	// one-hot columns); otherwise values are Gaussian, normalized so
	// E‖x‖₂ ≈ 1, which keeps the paper's shared step size (1/√i) stable
	// across tasks.
	Binary bool
	Seed   int64
}

// roundVal truncates a feature value to 4 significant digits — the compact
// text encoding the generated Raw lines use. The stored numeric value is the
// rounded one, so parsing Raw reproduces Units exactly.
func roundVal(v float64) float64 {
	s := strconv.FormatFloat(v, 'g', 4, 64)
	r, _ := strconv.ParseFloat(s, 64)
	return r
}

// Generate materializes the dataset described by s.
func Generate(s Spec) (*data.Dataset, error) {
	if s.N <= 0 || s.D <= 0 {
		return nil, fmt.Errorf("synth: %s needs positive N and D, got %d×%d", s.Name, s.N, s.D)
	}
	if s.Density <= 0 || s.Density > 1 {
		return nil, fmt.Errorf("synth: %s needs density in (0,1], got %g", s.Name, s.Density)
	}
	if s.Margin == 0 {
		s.Margin = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Ground-truth model.
	truth := make(linalg.Vector, s.D)
	for i := range truth {
		truth[i] = s.Margin * rng.NormFloat64() / math.Sqrt(float64(s.D)*s.Density)
	}

	nnzPer := int(math.Max(1, math.Round(s.Density*float64(s.D))))
	dense := s.Density >= 0.999
	// Normalize non-binary feature values so E‖x‖₂ ≈ 1.
	valScale := 1 / math.Sqrt(float64(nnzPer))

	// Points are generated straight into the columnar arena: dense rows fill
	// the strided values buffer in place, sparse rows go through reused
	// index/value scratch — no per-point allocation either way.
	var b *data.MatrixBuilder
	if dense {
		b = data.NewDenseMatrixBuilder(s.N, s.D)
	} else {
		b = data.NewMatrixBuilder(s.N, s.N*nnzPer)
	}
	scratchIdx := make([]int32, 0, nnzPer)
	scratchVal := make([]float64, 0, nnzPer)
	seen := make(map[int32]bool, nnzPer)

	genVal := func(drift float64) float64 {
		if s.Binary {
			return 1
		}
		return roundVal((rng.NormFloat64() + drift) * valScale)
	}

	// The raw margin w*·x is roughly N(0, σ²) with σ = Margin for binary
	// features (nnz ones against truth entries of variance Margin²/nnz) and
	// σ = Margin/√nnz for normalized Gaussian features (inner products of
	// 1/√nnz-scale values concentrate). The rejection threshold is Gap·σ.
	marginSigma := s.Margin
	if !s.Binary {
		marginSigma /= math.Sqrt(float64(nnzPer))
	}
	gapThreshold := s.Gap * marginSigma

	for i := 0; i < s.N; i++ {
		// Skew shifts which features fire and the label prior as a
		// function of position in the file.
		drift := 0.0
		if s.Skew > 0 {
			drift = s.Skew * (float64(i)/float64(s.N) - 0.5) * 2
		}
		var denseRow linalg.Vector
		if dense {
			// One strided arena row, reserved once and refilled in place on
			// gap-rejection retries.
			row, err := b.DenseRowBuffer()
			if err != nil {
				return nil, err
			}
			denseRow = row
		}
		var margin float64
		attempts := 0
	regenerate:
		attempts++
		if dense {
			for j := range denseRow {
				denseRow[j] = genVal(drift)
			}
			margin = denseRow.Dot(truth)
		} else {
			scratchIdx = scratchIdx[:0]
			scratchVal = scratchVal[:0]
			// Skewed datasets concentrate early points on low feature
			// indices and late points on high ones.
			base := 0
			span := s.D
			if s.Skew > 0 {
				span = int(float64(s.D) * (1 - s.Skew/2))
				base = int(float64(s.D-span) * float64(i) / float64(s.N))
			}
			clear(seen)
			for len(scratchIdx) < nnzPer {
				j := int32(base + rng.Intn(span))
				if seen[j] {
					continue
				}
				seen[j] = true
				scratchIdx = append(scratchIdx, j)
				scratchVal = append(scratchVal, genVal(drift))
			}
			// Normalize the scratch row exactly the way NewSparse would
			// (indices are distinct by construction, so this only sorts).
			n, err := linalg.SortDedup(scratchIdx, scratchVal)
			if err != nil {
				return nil, err
			}
			scratchIdx, scratchVal = scratchIdx[:n], scratchVal[:n]
			margin = linalg.SparseDot(scratchIdx, scratchVal, truth)
		}

		var label float64
		switch s.Task {
		case data.TaskLinearRegression:
			label = roundVal(margin + s.Noise*rng.NormFloat64())
		default: // classification: SVM or logistic
			// Cap rejection attempts so a mis-specified Gap degrades into
			// extra boundary points instead of an endless loop.
			if gapThreshold > 0 && math.Abs(margin) < gapThreshold && attempts < 200 {
				goto regenerate
			}
			label = 1.0
			if margin < 0 {
				label = -1
			}
			if s.Noise > 0 && rng.Float64() < s.Noise {
				label = -label
			}
		}
		if dense {
			b.CommitDenseRow(label)
		} else if err := b.AppendSparse(label, scratchIdx, scratchVal); err != nil {
			return nil, err
		}
	}

	ds := data.FromMatrix(s.Name, s.Task, b.Build())
	if ds.NumFeatures < s.D {
		ds.NumFeatures = s.D
	}
	return ds, nil
}

// MustGenerate is Generate for specs known statically correct; it panics on
// error and is intended for the registry and tests.
func MustGenerate(s Spec) *data.Dataset {
	ds, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return ds
}
