package synth

import (
	"fmt"

	"ml4all/internal/data"
)

// The suite below reproduces the paper's Table 2 at the repository's global
// 1/64 simulation scale. Cardinalities are chosen so each stand-in keeps its
// original's *relationships* on the 1/64 cluster (2 MB partitions, 64 MB
// cache): adult and covtype stay single-partition, yearpred/rcv1/higgs/svm1
// span partitions but fit the cache, svm2 fits snugly, svm3 overflows it.
// Feature counts, densities and tasks match Table 2 exactly (rcv1's feature
// space is cut 1/64 too, keeping its extreme-dimensionality role); margins
// and noise are tuned so relative convergence difficulty follows the paper's
// Table 4 iteration counts.

// DefaultScale is the reference cardinality divisor documented above.
const DefaultScale = 64

// Table2 returns the paper's dataset suite. scale != DefaultScale rescales
// every cardinality proportionally (floored at 300 points); pass 0 for the
// default.
func Table2(scale int) []Spec {
	if scale <= 0 {
		scale = DefaultScale
	}
	n := func(atDefault int) int {
		v := atDefault * DefaultScale / scale
		if v < 300 {
			v = 300
		}
		return v
	}
	return []Spec{
		// Logistic rows carry label noise (the real datasets are not
		// separable); the dense SVM suite is generated separable with a
		// margin gap, which is what yields the paper's signature pattern of
		// SGD converging in a handful of draws while MGD rides its sampling
		// noise to the iteration cap.
		{Name: "adult", Task: data.TaskLogisticRegression, N: n(1575), D: 123, Density: 0.11, Noise: 0.10, Margin: 1.0, Gap: 1.0, Binary: true, Seed: 11},
		{Name: "covtype", Task: data.TaskLogisticRegression, N: n(9078), D: 54, Density: 0.22, Noise: 0.20, Margin: 0.6, Gap: 0.8, Binary: true, Seed: 12},
		{Name: "yearpred", Task: data.TaskLinearRegression, N: n(7245), D: 90, Density: 1.0, Noise: 0.05, Margin: 2.0, Seed: 13},
		{Name: "rcv1", Task: data.TaskLogisticRegression, N: n(10584), D: 738, Density: 0.096, Noise: 0.05, Skew: 0.6, Margin: 0.8, Gap: 0.8, Seed: 14},
		{Name: "higgs", Task: data.TaskSVM, N: n(171875), D: 28, Density: 0.92, Noise: 0, Margin: 3.0, Gap: 2.0, Seed: 15},
		{Name: "svm1", Task: data.TaskSVM, N: n(25000), D: 100, Density: 1.0, Noise: 0, Margin: 3.0, Gap: 2.0, Seed: 16},
		{Name: "svm2", Task: data.TaskSVM, N: n(75000), D: 100, Density: 1.0, Noise: 0, Margin: 3.0, Gap: 2.0, Seed: 17},
		{Name: "svm3", Task: data.TaskSVM, N: n(250000), D: 100, Density: 1.0, Noise: 0, Margin: 3.0, Gap: 2.0, Seed: 18},
	}
}

// ByName returns the Table 2 spec with the given name.
func ByName(name string, scale int) (Spec, error) {
	for _, s := range Table2(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("synth: unknown dataset %q", name)
}

// SVMA returns one point of the paper's SVM A family (Figure 10a: sweeping
// the number of points at 100 features, 2.7M-88M in the paper). points is
// the *paper* cardinality; the generated cardinality follows the same
// bytes-to-cache calibration as svm1-svm3 (at the default scale, 25 000
// generated points stand for 5.5M paper points). scale <= 0 uses
// DefaultScale.
func SVMA(points, scale int) Spec {
	if scale <= 0 {
		scale = DefaultScale
	}
	n := int(float64(points) * 25000.0 / 5516800.0 * float64(DefaultScale) / float64(scale))
	if n < 300 {
		n = 300
	}
	return Spec{
		Name: fmt.Sprintf("svmA-%.1fM", float64(points)/1e6), Task: data.TaskSVM,
		N: n, D: 100, Density: 1.0, Noise: 0, Margin: 3.0, Gap: 2.0, Seed: 19,
	}
}

// SVMB returns one point of the paper's SVM B family (Figure 10b: sweeping
// the number of features, 1K-500K at 10K points). features is the paper
// feature count, scaled like rcv1's; the cardinality is the paper's 10K
// shrunk by the same factor beyond the default scale.
func SVMB(features, scale int) Spec {
	if scale <= 0 {
		scale = DefaultScale
	}
	d := features / scale
	if d < 15 {
		d = 15
	}
	n := 10000 * DefaultScale / scale
	if n < 1000 {
		n = 1000
	}
	return Spec{
		Name: fmt.Sprintf("svmB-%dk", features/1000), Task: data.TaskSVM,
		N: n, D: d, Density: 1.0, Noise: 0, Margin: 3.0, Gap: 2.0, Seed: 20,
	}
}
