package synth

import (
	"math"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func TestGenerateShapeMatchesSpec(t *testing.T) {
	spec := Spec{Name: "t", Task: data.TaskSVM, N: 500, D: 40, Density: 0.25, Margin: 1, Seed: 1}
	ds := MustGenerate(spec)
	if ds.N() != 500 {
		t.Fatalf("N = %d", ds.N())
	}
	if ds.NumFeatures != 40 {
		t.Fatalf("D = %d", ds.NumFeatures)
	}
	if math.Abs(ds.Density-0.25) > 0.05 {
		t.Fatalf("density = %g, want ~0.25", ds.Density)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, u := range ds.Rows() {
		if u.Label != 1 && u.Label != -1 {
			t.Fatalf("classification label %g", u.Label)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "t", Task: data.TaskSVM, N: 100, D: 10, Density: 1, Margin: 1, Seed: 9}
	a, b := MustGenerate(spec), MustGenerate(spec)
	for i := 0; i < a.N(); i++ {
		if a.Raw[i] != b.Raw[i] {
			t.Fatalf("unit %d differs across same-seed generations", i)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{N: 0, D: 5, Density: 1},
		{N: 5, D: 0, Density: 1},
		{N: 5, D: 5, Density: 0},
		{N: 5, D: 5, Density: 1.5},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestRegressionLabelsTrackTruth(t *testing.T) {
	// Near-noiseless regression data must be nearly fittable: labels should
	// correlate strongly with a least-squares refit, which we approximate by
	// checking label variance is dominated by margin variance.
	spec := Spec{Name: "t", Task: data.TaskLinearRegression, N: 2000, D: 20, Density: 1, Noise: 0.01, Margin: 2, Seed: 3}
	ds := MustGenerate(spec)
	var mean, varSum float64
	for _, u := range ds.Rows() {
		mean += u.Label
	}
	mean /= float64(ds.N())
	for _, u := range ds.Rows() {
		varSum += (u.Label - mean) * (u.Label - mean)
	}
	if varSum/float64(ds.N()) < 0.1 {
		t.Fatalf("label variance %g too small; labels are not informative", varSum/float64(ds.N()))
	}
}

func TestBinaryFeaturesAreOnes(t *testing.T) {
	spec := Spec{Name: "t", Task: data.TaskLogisticRegression, N: 200, D: 50, Density: 0.2, Binary: true, Margin: 1, Seed: 4}
	ds := MustGenerate(spec)
	for _, u := range ds.Rows() {
		for _, v := range u.Vals {
			if v != 1 {
				t.Fatalf("binary dataset has value %g", v)
			}
		}
	}
}

func TestGapSeparatesClasses(t *testing.T) {
	// With a gap, a linear separator recovering the truth direction exists;
	// verify empirically that the zero-noise gap dataset is separated by
	// *some* margin under its own generating direction: no point may sit
	// inside the carved band. We reconstruct the truth by regenerating with
	// the same seed (white-box but deterministic).
	spec := Spec{Name: "t", Task: data.TaskSVM, N: 300, D: 30, Density: 1, Noise: 0, Margin: 2, Gap: 1.5, Seed: 5}
	ds := MustGenerate(spec)
	pos, neg := 0, 0
	for _, u := range ds.Rows() {
		if u.Label > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate labels: %d/%d", pos, neg)
	}
}

func TestSkewShiftsLabelPrior(t *testing.T) {
	spec := Spec{Name: "t", Task: data.TaskLogisticRegression, N: 4000, D: 50, Density: 0.3, Skew: 0.8, Margin: 1, Seed: 6}
	ds := MustGenerate(spec)
	frac := func(units []data.Row) float64 {
		p := 0
		for _, u := range units {
			if u.Label > 0 {
				p++
			}
		}
		return float64(p) / float64(len(units))
	}
	first := frac(ds.Rows()[:1000])
	last := frac(ds.Rows()[3000:])
	if math.Abs(first-last) < 0.05 {
		t.Fatalf("skewed dataset has uniform label prior: %.2f vs %.2f", first, last)
	}
}

func TestRawParsesBackToUnits(t *testing.T) {
	// The generated text must reproduce the generated units exactly — the
	// property the engine's stock-transformer shortcut relies on.
	for _, spec := range []Spec{
		{Name: "sparse", Task: data.TaskSVM, N: 100, D: 30, Density: 0.3, Margin: 1, Seed: 7},
		{Name: "dense", Task: data.TaskLinearRegression, N: 100, D: 10, Density: 1, Margin: 1, Seed: 8},
	} {
		ds := MustGenerate(spec)
		for i, raw := range ds.Raw {
			u, ok, err := ds.Format.ParseLine(raw)
			if err != nil || !ok {
				t.Fatalf("%s line %d: %v", spec.Name, i, err)
			}
			if u.Label != ds.Row(i).Label {
				t.Fatalf("%s unit %d label %g != %g", spec.Name, i, u.Label, ds.Row(i).Label)
			}
			w := linalg.NewVector(ds.NumFeatures)
			for j := range w {
				w[j] = float64(j%5) - 2
			}
			if a, b := u.Dot(w), ds.Row(i).Dot(w); math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s unit %d features differ: dot %g != %g", spec.Name, i, a, b)
			}
		}
	}
}

func TestTable2SuiteShapes(t *testing.T) {
	specs := Table2(0)
	if len(specs) != 8 {
		t.Fatalf("Table 2 rows = %d, want 8", len(specs))
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	// Feature counts and tasks straight from the paper.
	checks := []struct {
		name string
		d    int
		task data.TaskKind
	}{
		{"adult", 123, data.TaskLogisticRegression},
		{"covtype", 54, data.TaskLogisticRegression},
		{"yearpred", 90, data.TaskLinearRegression},
		{"higgs", 28, data.TaskSVM},
		{"svm1", 100, data.TaskSVM},
	}
	for _, c := range checks {
		s, ok := byName[c.name]
		if !ok {
			t.Fatalf("dataset %s missing", c.name)
		}
		if s.D != c.d || s.Task != c.task {
			t.Errorf("%s: d=%d task=%v, want d=%d task=%v", c.name, s.D, s.Task, c.d, c.task)
		}
	}
	// Size ordering mirrors Table 2: svm1 < svm2 < svm3.
	if !(byName["svm1"].N < byName["svm2"].N && byName["svm2"].N < byName["svm3"].N) {
		t.Error("svm suite not increasing in cardinality")
	}
}

func TestTable2ScaleParameter(t *testing.T) {
	big := Table2(DefaultScale)
	small := Table2(DefaultScale * 4)
	for i := range big {
		if small[i].N >= big[i].N && big[i].N > 300 {
			t.Errorf("%s: scale did not shrink N (%d vs %d)", big[i].Name, small[i].N, big[i].N)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("adult", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSVMFamilies(t *testing.T) {
	a1, a2 := SVMA(2_700_000, 0), SVMA(88_000_000, 0)
	if a1.N >= a2.N {
		t.Fatalf("SVM A not increasing: %d vs %d", a1.N, a2.N)
	}
	b1, b2 := SVMB(1000, 0), SVMB(500_000, 0)
	if b1.D >= b2.D {
		t.Fatalf("SVM B not increasing: %d vs %d", b1.D, b2.D)
	}
	if b1.N != b2.N {
		t.Fatal("SVM B cardinality should stay fixed")
	}
}
