package storage

// Cache is an LRU partition cache standing in for the Spark executor block
// cache. The paper's large-dataset experiments (svm3, Figures 9–10) hinge on
// whether the working set fits: when it does not, every iteration pays disk
// IO again. Capacity is in bytes; inserting a partition larger than the
// remaining space evicts least-recently-used partitions first.
type Cache struct {
	capacity int64
	used     int64
	entries  map[int]*cacheEntry // partition ID -> entry
	head     *cacheEntry         // most recently used
	tail     *cacheEntry         // least recently used

	hits   int64
	misses int64

	// Entry storage: entries are carved from chunked blocks and recycled
	// through a free list on eviction, so steady-state cache churn performs
	// no per-entry allocation.
	chunk    []cacheEntry
	freeList *cacheEntry
}

type cacheEntry struct {
	id         int
	bytes      int64
	prev, next *cacheEntry
}

// NewCache returns a cache with the given byte capacity. A non-positive
// capacity yields a cache that never holds anything (all misses).
func NewCache(capacity int64) *Cache {
	return &Cache{capacity: capacity, entries: make(map[int]*cacheEntry, 32)}
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently resident.
func (c *Cache) Used() int64 { return c.used }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Contains reports whether partition id is resident, updating recency and
// hit/miss counters. This is the read path: callers charge memory-page costs
// on true and disk costs on false.
func (c *Cache) Contains(id int) bool {
	if e, ok := c.entries[id]; ok {
		c.touch(e)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Peek reports residency without updating recency or counters.
func (c *Cache) Peek(id int) bool {
	_, ok := c.entries[id]
	return ok
}

// Insert makes partition id resident, evicting LRU partitions as needed.
// Partitions larger than the whole cache are not admitted (Spark likewise
// skips caching blocks that cannot fit).
func (c *Cache) Insert(id int, bytes int64) {
	if bytes > c.capacity {
		return
	}
	if e, ok := c.entries[id]; ok {
		c.touch(e)
		return
	}
	for c.used+bytes > c.capacity && c.tail != nil {
		c.evict(c.tail)
	}
	e := c.alloc()
	e.id, e.bytes = id, bytes
	c.entries[id] = e
	c.used += bytes
	c.pushFront(e)
}

// Reset empties the cache and clears counters.
func (c *Cache) Reset() {
	c.entries = make(map[int]*cacheEntry, 32)
	c.head, c.tail = nil, nil
	c.used, c.hits, c.misses = 0, 0, 0
	c.chunk, c.freeList = nil, nil
}

// alloc returns a zero-linked entry from the free list or the current chunk,
// growing by fixed-size blocks so N inserts cost O(N/64) allocations.
func (c *Cache) alloc() *cacheEntry {
	if e := c.freeList; e != nil {
		c.freeList = e.next
		e.next = nil
		return e
	}
	if len(c.chunk) == 0 {
		c.chunk = make([]cacheEntry, 64)
	}
	e := &c.chunk[0]
	c.chunk = c.chunk[1:]
	return e
}

// CacheState is a serializable snapshot of a Cache: the resident partitions
// in recency order (most recently used first) plus the counters. Capacity is
// not part of the state — it belongs to the configuration a cache is rebuilt
// from.
type CacheState struct {
	IDs    []int
	Bytes  []int64
	Hits   int64
	Misses int64
}

// Snapshot captures the cache's resident set and counters without touching
// recency.
func (c *Cache) Snapshot() CacheState {
	st := CacheState{Hits: c.hits, Misses: c.misses}
	for e := c.head; e != nil; e = e.next {
		st.IDs = append(st.IDs, e.id)
		st.Bytes = append(st.Bytes, e.bytes)
	}
	return st
}

// Restore replaces the cache contents with a snapshot taken from a cache of
// the same capacity, reproducing residency, recency order and counters
// bit-identically.
func (c *Cache) Restore(st CacheState) {
	c.Reset()
	// Insert in reverse recency order so the snapshot's head ends up most
	// recently used again.
	for i := len(st.IDs) - 1; i >= 0; i-- {
		c.Insert(st.IDs[i], st.Bytes[i])
	}
	c.hits, c.misses = st.Hits, st.Misses
}

// Len returns the number of resident partitions.
func (c *Cache) Len() int { return len(c.entries) }

func (c *Cache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) evict(e *cacheEntry) {
	c.unlink(e)
	delete(c.entries, e.id)
	c.used -= e.bytes
	e.next = c.freeList
	c.freeList = e
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
