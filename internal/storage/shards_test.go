package storage

import (
	"fmt"
	"testing"

	"ml4all/internal/data"
)

func shardTestStore(t *testing.T, n int, partBytes int64) *Store {
	t.Helper()
	units := make([]data.Unit, n)
	raws := make([]string, n)
	for i := range units {
		units[i] = data.NewDenseUnit(1, []float64{float64(i), 2, 3})
		raws[i] = fmt.Sprintf("1,%d,2,3", i)
	}
	ds := data.FromUnits("shards", data.TaskSVM, units)
	ds.Raw = raws
	st, err := Build(ds, Layout{PartitionBytes: partBytes, PageBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardsCoverStoreExactly: shards tile the unit range with no gaps,
// overlaps, or partition straddling.
func TestShardsCoverStoreExactly(t *testing.T) {
	st := shardTestStore(t, 500, 512)
	if st.NumPartitions() < 2 {
		t.Fatalf("want several partitions, got %d", st.NumPartitions())
	}
	for _, maxUnits := range []int{0, 1, 7, 64, 10000} {
		shards := st.Shards(maxUnits)
		next := 0
		for i, sh := range shards {
			if sh.ID != i {
				t.Fatalf("maxUnits=%d: shard %d has ID %d", maxUnits, i, sh.ID)
			}
			if sh.Lo != next {
				t.Fatalf("maxUnits=%d: shard %d starts at %d, want %d", maxUnits, i, sh.Lo, next)
			}
			if sh.Units() <= 0 {
				t.Fatalf("maxUnits=%d: empty shard %d", maxUnits, i)
			}
			if maxUnits > 0 && sh.Units() > maxUnits {
				t.Fatalf("maxUnits=%d: shard %d holds %d units", maxUnits, i, sh.Units())
			}
			if sh.Lo < sh.Part.Lo || sh.Hi > sh.Part.Hi {
				t.Fatalf("maxUnits=%d: shard %d [%d,%d) straddles partition [%d,%d)",
					maxUnits, i, sh.Lo, sh.Hi, sh.Part.Lo, sh.Part.Hi)
			}
			next = sh.Hi
		}
		if next != st.Dataset.N() {
			t.Fatalf("maxUnits=%d: shards cover %d of %d units", maxUnits, next, st.Dataset.N())
		}
	}
}

// TestShardsStable: the same store and chunk size always produce the same
// boundaries — the property the engine's determinism guarantee rests on.
func TestShardsStable(t *testing.T) {
	st := shardTestStore(t, 300, 512)
	a, b := st.Shards(16), st.Shards(16)
	if len(a) != len(b) {
		t.Fatalf("shard counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestShardsEmptyStore(t *testing.T) {
	ds := data.FromUnits("empty", data.TaskSVM, nil)
	st, err := Build(ds, DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Shards(8); len(got) != 0 {
		t.Fatalf("empty store produced %d shards", len(got))
	}
}

// TestShardAndPartitionRowViews pins the zero-copy arena handout: the rows a
// partition or shard view serves must be bitwise-identical to indexing the
// dataset matrix directly, with no copying (a base label write is visible
// through the view).
func TestShardAndPartitionRowViews(t *testing.T) {
	st := shardTestStore(t, 500, 2<<10)
	ds := st.Dataset
	for _, p := range st.Partitions {
		rows := st.Rows(p)
		if rows.NumRows() != p.Units() {
			t.Fatalf("partition %d view has %d rows, want %d", p.ID, rows.NumRows(), p.Units())
		}
		for k := 0; k < rows.NumRows(); k++ {
			if !data.RowsEqual(rows.Row(k), ds.Row(p.Lo+k)) {
				t.Fatalf("partition %d row %d diverges from base", p.ID, k)
			}
		}
	}
	for _, sh := range st.Shards(64) {
		rows := sh.Rows(ds.Mat)
		if rows.NumRows() != sh.Units() {
			t.Fatalf("shard %d view has %d rows, want %d", sh.ID, rows.NumRows(), sh.Units())
		}
		if !data.RowsEqual(rows.Row(0), ds.Row(sh.Lo)) {
			t.Fatalf("shard %d first row diverges from base", sh.ID)
		}
	}
	// Zero-copy: the views alias the arena, they do not hold copies.
	view := st.Rows(st.Partitions[0])
	ds.Mat.SetLabel(st.Partitions[0].Lo, 424242)
	if view.Row(0).Label != 424242 {
		t.Fatal("partition view did not observe base label write — rows were copied")
	}
}
