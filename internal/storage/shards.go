package storage

import "ml4all/internal/data"

// Shard is a stable sub-range of one partition, the unit of intra-node
// parallelism: the engine's worker pool processes one shard per task, each
// into its own accumulator. Shard boundaries derive only from the dataset's
// partition layout and the requested maximum shard size — never from the
// worker count — so the partial-sum structure (and therefore the
// floating-point result of the ordered reduction over shards) is identical
// whether one worker or sixteen execute them.
type Shard struct {
	ID   int       // dense shard index over the whole store
	Part Partition // owning storage partition
	Lo   int       // first unit index (inclusive)
	Hi   int       // last unit index (exclusive)
}

// Units returns the number of data units in the shard.
func (s Shard) Units() int { return s.Hi - s.Lo }

// Rows returns the zero-copy arena view of the shard's [Lo, Hi) range over
// the given dataset matrix — what a worker-pool task scans.
func (s Shard) Rows(m *data.Matrix) *data.Matrix { return m.Slice(s.Lo, s.Hi) }

// SplitEven cuts [lo, hi) into ceil((hi-lo)/max) contiguous near-equal
// ranges (a single range when max <= 0) and calls fn for each, in order.
// Both Shards and the engine's batch chunking route through it, so the
// boundary rule the bit-identical-results guarantee depends on lives in
// exactly one place.
func SplitEven(lo, hi, max int, fn func(lo, hi int)) {
	units := hi - lo
	if units <= 0 {
		return
	}
	chunks := 1
	if max > 0 {
		chunks = (units + max - 1) / max
	}
	for c := 0; c < chunks; c++ {
		clo := lo + c*units/chunks
		chi := lo + (c+1)*units/chunks
		if clo < chi {
			fn(clo, chi)
		}
	}
}

// Shards returns a stable partitioned view of the store for intra-node
// parallel execution: every storage partition split into contiguous chunks of
// at most maxUnits data units (one chunk when the partition is smaller).
// Shards never straddle partition boundaries, so per-partition cost
// accounting can still walk partitions while the numeric work walks shards.
// maxUnits <= 0 yields one shard per partition. The shard list is a pure
// function of the immutable layout, so it is memoized per maxUnits and the
// returned slice is shared — callers must treat it as read-only.
func (s *Store) Shards(maxUnits int) []Shard {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if cached, ok := s.shardCache[maxUnits]; ok {
		return cached
	}
	n := 0
	for _, p := range s.Partitions {
		SplitEven(p.Lo, p.Hi, maxUnits, func(_, _ int) { n++ })
	}
	shards := make([]Shard, 0, n)
	for _, p := range s.Partitions {
		part := p
		SplitEven(p.Lo, p.Hi, maxUnits, func(lo, hi int) {
			shards = append(shards, Shard{ID: len(shards), Part: part, Lo: lo, Hi: hi})
		})
	}
	if s.shardCache == nil {
		s.shardCache = map[int][]Shard{}
	}
	s.shardCache[maxUnits] = shards
	return shards
}
