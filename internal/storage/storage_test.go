package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func toyDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	units := make([]data.Unit, n)
	for i := range units {
		s, err := linalg.NewSparse([]int32{int32(i % 10)}, []float64{1.5})
		if err != nil {
			t.Fatal(err)
		}
		units[i] = data.NewSparseUnit(1, s)
	}
	return data.FromUnits("toy", data.TaskSVM, units)
}

func TestBuildPartitionInvariants(t *testing.T) {
	ds := toyDataset(t, 1000)
	l := Layout{PartitionBytes: 256, PageBytes: 64}
	st, err := Build(ds, l)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions tile [0, n) contiguously.
	next := 0
	var bytes int64
	for i, p := range st.Partitions {
		if p.ID != i {
			t.Fatalf("partition %d has ID %d", i, p.ID)
		}
		if p.Lo != next {
			t.Fatalf("partition %d starts at %d, want %d", i, p.Lo, next)
		}
		if p.Hi <= p.Lo {
			t.Fatalf("partition %d empty: [%d,%d)", i, p.Lo, p.Hi)
		}
		if p.Bytes > l.PartitionBytes && p.Units() > 1 {
			t.Fatalf("partition %d holds %d bytes over limit %d with %d units",
				i, p.Bytes, l.PartitionBytes, p.Units())
		}
		next = p.Hi
		bytes += p.Bytes
	}
	if next != ds.N() {
		t.Fatalf("partitions cover %d units, want %d", next, ds.N())
	}
	if bytes != st.TotalBytes || bytes != ds.SizeBytes() {
		t.Fatalf("byte accounting: partitions=%d store=%d dataset=%d", bytes, st.TotalBytes, ds.SizeBytes())
	}
}

func TestBuildCoverageProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Rand:     rand.New(rand.NewSource(31)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(1 + r.Intn(500))
			vals[1] = reflect.ValueOf(64 + r.Intn(1024))
		},
	}
	f := func(n, partBytes int) bool {
		units := make([]data.Unit, n)
		for i := range units {
			s, _ := linalg.NewSparse([]int32{int32(i % 5)}, []float64{2})
			units[i] = data.NewSparseUnit(-1, s)
		}
		ds := data.FromUnits("q", data.TaskSVM, units)
		st, err := Build(ds, Layout{PartitionBytes: int64(partBytes), PageBytes: 32})
		if err != nil {
			return false
		}
		// Every unit index maps to exactly the partition containing it.
		for i := 0; i < n; i++ {
			p, err := st.PartitionOf(i)
			if err != nil || i < p.Lo || i >= p.Hi {
				return false
			}
		}
		return st.Partitions[len(st.Partitions)-1].Hi == n
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadLayouts(t *testing.T) {
	ds := toyDataset(t, 2)
	if _, err := Build(ds, Layout{PartitionBytes: 0, PageBytes: 1}); err == nil {
		t.Error("zero partition size accepted")
	}
	if _, err := Build(ds, Layout{PartitionBytes: 10, PageBytes: 20}); err == nil {
		t.Error("page larger than partition accepted")
	}
}

func TestEmptyDatasetGetsOnePartition(t *testing.T) {
	ds := data.FromUnits("empty", data.TaskSVM, nil)
	st, err := Build(ds, DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPartitions() != 1 {
		t.Fatalf("partitions = %d, want 1", st.NumPartitions())
	}
}

func TestPartitionPages(t *testing.T) {
	p := Partition{Bytes: 1000}
	l := Layout{PartitionBytes: 4096, PageBytes: 256}
	if got := p.Pages(l); got != 4 {
		t.Fatalf("Pages = %d, want 4 (ceil 1000/256)", got)
	}
}

func TestPartitionOfOutOfRange(t *testing.T) {
	ds := toyDataset(t, 10)
	st, err := Build(ds, DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PartitionOf(10); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestUnitsPerPartition(t *testing.T) {
	ds := toyDataset(t, 100)
	st, err := Build(ds, Layout{PartitionBytes: 128, PageBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	k := st.UnitsPerPartition()
	for _, p := range st.Partitions {
		if p.Units() > k {
			t.Fatalf("partition %d has %d units > k=%d", p.ID, p.Units(), k)
		}
	}
}

// --- Cache ---

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	c.Insert(1, 40)
	c.Insert(2, 40)
	if !c.Peek(1) || !c.Peek(2) {
		t.Fatal("inserted partitions missing")
	}
	// Touch 1 so 2 becomes LRU, then insert 3 forcing eviction of 2.
	if !c.Contains(1) {
		t.Fatal("Contains(1) = false")
	}
	c.Insert(3, 40)
	if !c.Peek(1) || c.Peek(2) || !c.Peek(3) {
		t.Fatalf("LRU eviction wrong: 1=%v 2=%v 3=%v", c.Peek(1), c.Peek(2), c.Peek(3))
	}
	if c.Used() != 80 {
		t.Fatalf("Used = %d, want 80", c.Used())
	}
}

func TestCacheOversizedNotAdmitted(t *testing.T) {
	c := NewCache(10)
	c.Insert(1, 100)
	if c.Peek(1) || c.Used() != 0 {
		t.Fatal("oversized partition admitted")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(100)
	c.Contains(1) // miss
	c.Insert(1, 10)
	c.Contains(1) // hit
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(100)
	c.Insert(1, 10)
	c.Contains(1)
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Reset left state")
	}
	h, m := c.Stats()
	if h != 0 || m != 0 {
		t.Fatal("Reset left counters")
	}
}

func TestCacheZeroCapacityAllMisses(t *testing.T) {
	c := NewCache(0)
	c.Insert(1, 1)
	if c.Contains(1) {
		t.Fatal("zero-capacity cache held a partition")
	}
}

// TestCacheNeverExceedsCapacityProperty: random workload keeps Used <= Capacity.
func TestCacheNeverExceedsCapacityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCache(64)
		for _, op := range ops {
			id := int(op % 16)
			switch {
			case op%3 == 0:
				c.Contains(id)
			default:
				c.Insert(id, int64(op%40)+1)
			}
			if c.Used() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
