// Package storage simulates the storage substrate the paper's cost model is
// written against: datasets chunked into fixed-size horizontal partitions
// (HDFS blocks), each partition made of pages (the minimum unit of disk or
// memory access), with an executor-side cache standing in for Spark's block
// cache. The cluster simulator charges time for page reads, seeks and cache
// hits using the layout arithmetic exposed here.
package storage

import (
	"fmt"
	"sync"

	"ml4all/internal/data"
)

// Layout describes the physical layout parameters (Table 1 of the paper).
type Layout struct {
	PartitionBytes int64 // |P|_b: bytes per partition (HDFS block size)
	PageBytes      int64 // |page|_b: bytes per page
}

// DefaultLayout mirrors the paper's HDFS defaults at the repository's global
// 1/64 simulation scale: 128 MB blocks become 2 MB partitions, so a dataset
// generated at 1/64 of a Table 2 row's bytes spans the same number of
// partitions the paper's original did. Pages are 1 KB — the minimum unit of
// (simulated) storage access.
func DefaultLayout() Layout {
	return Layout{PartitionBytes: 2 << 20, PageBytes: 1 << 10}
}

// Partition is one horizontal chunk of a dataset: a contiguous range of data
// units plus its byte size.
type Partition struct {
	ID    int
	Lo    int // first unit index (inclusive)
	Hi    int // last unit index (exclusive)
	Bytes int64
}

// Units returns the number of data units in the partition.
func (p Partition) Units() int { return p.Hi - p.Lo }

// Pages returns how many pages the partition occupies under layout l.
func (p Partition) Pages(l Layout) int64 {
	return (p.Bytes + l.PageBytes - 1) / l.PageBytes
}

// Store is a dataset laid out into partitions. It is immutable after Build
// (the shard memo is internal and lock-protected).
type Store struct {
	Dataset    *data.Dataset
	Layout     Layout
	Partitions []Partition
	TotalBytes int64

	shardMu    sync.Mutex
	shardCache map[int][]Shard
}

// Build lays ds out into partitions under l. Partition boundaries respect
// data-unit boundaries: a unit never straddles two partitions, matching how a
// record reader treats HDFS block splits.
func Build(ds *data.Dataset, l Layout) (*Store, error) {
	if l.PartitionBytes <= 0 || l.PageBytes <= 0 {
		return nil, fmt.Errorf("storage: invalid layout %+v", l)
	}
	if l.PageBytes > l.PartitionBytes {
		return nil, fmt.Errorf("storage: page size %d exceeds partition size %d", l.PageBytes, l.PartitionBytes)
	}
	s := &Store{Dataset: ds, Layout: l}
	var cur Partition
	cur.Lo = 0
	for i := 0; i < ds.N(); i++ {
		b := int64(len(ds.Raw[i])) + 1
		if cur.Bytes > 0 && cur.Bytes+b > l.PartitionBytes {
			cur.Hi = i
			s.Partitions = append(s.Partitions, cur)
			cur = Partition{ID: len(s.Partitions), Lo: i}
		}
		cur.Bytes += b
		s.TotalBytes += b
	}
	if cur.Bytes > 0 || len(s.Partitions) == 0 {
		cur.Hi = ds.N()
		s.Partitions = append(s.Partitions, cur)
	}
	return s, nil
}

// Rows returns the zero-copy arena view of the partition's data units — the
// contiguous [Lo, Hi) slice of the dataset's columnar matrix. No row data is
// copied; the view shares the store's arena.
func (s *Store) Rows(p Partition) *data.Matrix {
	return s.Dataset.Mat.Slice(p.Lo, p.Hi)
}

// NumPartitions returns p(D), the partition count.
func (s *Store) NumPartitions() int { return len(s.Partitions) }

// UnitsPerPartition returns k from Table 1: the (maximum) number of data
// units in one partition.
func (s *Store) UnitsPerPartition() int {
	k := 0
	for _, p := range s.Partitions {
		if u := p.Units(); u > k {
			k = u
		}
	}
	return k
}

// PartitionOf returns the partition containing unit index i.
func (s *Store) PartitionOf(i int) (Partition, error) {
	lo, hi := 0, len(s.Partitions)
	for lo < hi {
		mid := (lo + hi) / 2
		p := s.Partitions[mid]
		switch {
		case i < p.Lo:
			hi = mid
		case i >= p.Hi:
			lo = mid + 1
		default:
			return p, nil
		}
	}
	return Partition{}, fmt.Errorf("storage: unit index %d out of range", i)
}

// TotalPages returns the number of pages the whole dataset occupies.
func (s *Store) TotalPages() int64 {
	var n int64
	for _, p := range s.Partitions {
		n += p.Pages(s.Layout)
	}
	return n
}
