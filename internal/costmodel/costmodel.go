// Package costmodel implements the paper's Section 7: analytic IO/CPU/network
// costs per operator (Table 1 notation, Equations 3-6) composed into
// per-plan costs (Equations 7-9). The model is calibrated by the same
// cluster.Config the simulator runs with, so its estimates track the
// simulated execution the way the paper's model tracks its Spark cluster —
// closely, but not tautologically: execution adds stragglers (jitter), task
// packing and cache dynamics the closed-form model does not see.
package costmodel

import (
	"fmt"
	"math"

	"ml4all/internal/cluster"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// DataStats is the statistics vector the model needs about a dataset —
// everything in Table 1 that depends on D.
type DataStats struct {
	N             int     // n: number of data units
	Bytes         int64   // |D|_b
	AvgUnitBytes  float64 // |U|_b on average
	AvgNNZ        float64 // mean stored values per unit
	NumFeatures   int     // d
	Partitions    int     // p(D)
	UnitsPerPart  int     // k
	PartBytes     int64   // |P|_b
	PageBytes     int64   // |page|_b
	FitsInCache   bool    // |D|_b <= cache capacity
	AccDimFor     int     // accumulator dimensionality (set per plan)
	SampleUnitCap int     // unused by the model; reserved for reports
}

// StatsOf derives DataStats from a laid-out store and a cluster config.
func StatsOf(st *storage.Store, cfg cluster.Config) DataStats {
	ds := st.Dataset
	s := DataStats{
		N:            ds.N(),
		Bytes:        st.TotalBytes,
		NumFeatures:  ds.NumFeatures,
		Partitions:   st.NumPartitions(),
		UnitsPerPart: st.UnitsPerPartition(),
		PartBytes:    st.Layout.PartitionBytes,
		PageBytes:    st.Layout.PageBytes,
		FitsInCache:  st.TotalBytes <= cfg.CacheBytes,
	}
	if s.N > 0 {
		s.AvgUnitBytes = float64(s.Bytes) / float64(s.N)
		s.AvgNNZ = float64(ds.Mat.NNZ()) / float64(s.N)
	}
	return s
}

// Model prices operators and plans for one dataset on one cluster.
type Model struct {
	Cfg   cluster.Config
	Stats DataStats

	// FastMath prices batched compute at the fast kernel tier's measured
	// flop rate (cluster.ActiveFastMathFlopFrac, which resolves the SIMD or
	// portable backend actually executing), mirroring Sim.CostComputeFast —
	// set it when the run the model prices will execute with
	// engine.Options.FastMath. Per-row and randomized compute is unaffected,
	// exactly as in execution.
	FastMath bool
}

// New returns a model for the given store and cluster configuration.
func New(st *storage.Store, cfg cluster.Config) *Model {
	return &Model{Cfg: cfg, Stats: StatsOf(st, cfg)}
}

// waves returns w(D) = p(D)/cap as a float (Table 1); floor/ceil handling
// follows Equations 3-4.
func (m *Model) waves() float64 {
	return float64(m.Stats.Partitions) / float64(m.Cfg.Cap())
}

// pageIO returns the per-page read cost, from cache when the dataset is
// resident and warm, from disk otherwise.
func (m *Model) pageIO(warm bool) cluster.Seconds {
	if warm && m.Stats.FitsInCache {
		return m.Cfg.MemPageSec
	}
	return m.Cfg.DiskPageSec
}

// CIO is Equation 3: the cost of scanning the dataset once, reading the
// pages of one partition per wave. warm selects cache-resident page cost.
func (m *Model) CIO(warm bool) cluster.Seconds {
	pagesPerPart := cluster.Seconds((m.Stats.PartBytes + m.Stats.PageBytes - 1) / m.Stats.PageBytes)
	w := m.waves()
	full := math.Floor(w)
	perWave := m.Cfg.SeekSec + pagesPerPart*m.pageIO(warm)
	c := cluster.Seconds(full) * perWave
	// Last (partial) wave: the remaining partitions, costed as one
	// partition's pages (they run in parallel).
	if rem := float64(m.Stats.Partitions) - full*float64(m.Cfg.Cap()); rem > 0 {
		c += perWave
	}
	return c
}

// CCPU is Equation 4: the cost of processing every data unit with a per-unit
// cost, k units per wave.
func (m *Model) CCPU(perUnit cluster.Seconds) cluster.Seconds {
	k := float64(m.Stats.UnitsPerPart)
	w := m.waves()
	full := math.Floor(w)
	c := cluster.Seconds(full*k) * perUnit
	if rem := float64(m.Stats.Partitions) - full*float64(m.Cfg.Cap()); rem > 0 {
		c += cluster.Seconds(k) * perUnit
	}
	// Per-wave scheduling overhead parallels the simulator's charging.
	c += cluster.Seconds(math.Ceil(w)) * m.Cfg.WaveOverheadSec
	return c
}

// CNT is Equation 5: transferring bytes across the network in the given
// number of aggregation rounds.
func (m *Model) CNT(bytes int64, rounds int) cluster.Seconds {
	if bytes <= 0 {
		return 0
	}
	if rounds < 1 {
		rounds = 1
	}
	return cluster.Seconds(float64(bytes)/m.Cfg.NetBytePerSec) +
		cluster.Seconds(rounds)*m.Cfg.PacketLatencySec
}

// Per-unit CPU costs for the stock operators.

func (m *Model) parsePerUnit() cluster.Seconds {
	return cluster.Seconds(m.Stats.AvgUnitBytes)*m.Cfg.ParseByteSec + m.Cfg.UnitOverheadSec
}

// computePerUnit prices one Compute invocation on one unit. Batch-capable
// Computers (gd.BatchComputer — all stock plans) pay the per-unit dispatch
// overhead at the measured post-batching fraction, mirroring exactly what
// the simulator charges them through Sim.CostCompute; per-row Computer UDFs
// pay the full overhead. See cluster.ComputeUnitOverheadFrac for the
// measured constant table.
func (m *Model) computePerUnit(ops float64, batched, fast bool) cluster.Seconds {
	overhead := m.Cfg.UnitOverheadSec
	flop := m.Cfg.FlopSec
	if batched {
		overhead *= cluster.ComputeUnitOverheadFrac
		if fast {
			// The fast tier only exists on the blocked path; per-row
			// compute stays exact, so only batched pricing discounts. The
			// fraction is the executing backend's (SIMD when dispatch is
			// live, portable fast-go otherwise), same as the simulator.
			flop *= cluster.Seconds(cluster.ActiveFastMathFlopFrac())
		}
	}
	return cluster.Seconds(ops)*flop + overhead
}

// driverOp prices a small driver-side operator over the model dimensionality
// (Update, Converge).
func (m *Model) driverOp(flops float64) cluster.Seconds {
	return cluster.Seconds(flops)*m.Cfg.FlopSec + m.Cfg.UnitOverheadSec
}

// Breakdown itemizes a plan's estimated cost the way Section 7.2 composes it.
type Breakdown struct {
	Plan      string
	Stage     cluster.Seconds // c_S
	Transform cluster.Seconds // c_T (upfront for eager; per-iteration share for lazy is in Iteration)
	Iteration cluster.Seconds // per-iteration cost: sample + (lazy transform) + compute + update + converge + loop
	JobInit   cluster.Seconds
	Total     func(T int) cluster.Seconds
}

// PlanCost returns the estimated total cost of running plan for T iterations
// (Equations 7-9 generalized to every plan in the Figure 5 space).
func (m *Model) PlanCost(plan gd.Plan, T int) cluster.Seconds {
	b := m.Breakdown(plan)
	return b.Total(T)
}

// Breakdown computes the itemized estimate for a plan.
func (m *Model) Breakdown(plan gd.Plan) Breakdown {
	ops := plan.Computer.Ops(int(math.Round(m.Stats.AvgNNZ)))
	accDim := plan.Computer.AccDim(m.Stats.NumFeatures)
	// Batch-capable (fused kernels will actually run) and not randomized —
	// the same eligibility the engine's cost charging applies (randomized
	// computers run per row for their RNG stream). The engine additionally
	// bills per-row when a custom Transformer forces a row memo; the model
	// cannot see transformer stockness (it has no dataset format) and
	// prices those plans as batched — an approximation on an already-
	// approximate estimate.
	bc, batched := plan.Computer.(gd.BatchComputer)
	if batched && !bc.BatchCapable() {
		batched = false
	}
	if _, randomized := plan.Computer.(gd.RandomizedComputer); randomized {
		batched = false
	}
	// Fast-tier pricing applies only where the fast kernels will actually
	// dispatch: a batched pass whose computer reports FastCapable — the
	// same resolution the engine performs once per run.
	fast := false
	if m.FastMath && batched {
		if fc, ok := plan.Computer.(gd.FastBatchComputer); ok && fc.FastCapable() {
			fast = true
		}
	}
	d := float64(m.Stats.NumFeatures)

	br := Breakdown{Plan: plan.Name(), JobInit: m.Cfg.JobInitSec}
	br.Stage = m.driverOp(d)

	if plan.Transform == gd.Eager {
		br.Transform = m.CIO(false) + m.CCPU(m.parsePerUnit())
	}

	// Converge + Loop + Update run on the driver every iteration, plus the
	// per-iteration driver coordination overhead.
	driver := m.driverOp(2*d) + m.driverOp(d) + m.driverOp(1) + m.Cfg.DriverIterSec

	var iter cluster.Seconds
	switch {
	case plan.Sampling == gd.NoSampling:
		// BGD (Eq. 7): full scan + compute per iteration, then the reduce.
		perUnit := m.computePerUnit(ops, batched, fast)
		if plan.Transform == gd.Lazy {
			perUnit += m.parsePerUnit() // off the Figure 5 space, but priced honestly
		}
		iter = m.CIO(true) + m.CCPU(perUnit)
		iter += m.CNT(int64(m.Cfg.Executors()*accDim)*8, 1)
	default:
		iter = m.sampleCost(plan) + m.batchCost(plan, ops, accDim, batched, fast)
	}
	iter += driver

	br.Iteration = iter
	br.Total = func(T int) cluster.Seconds {
		return br.JobInit + br.Stage + br.Transform + cluster.Seconds(T)*br.Iteration
	}
	return br
}

// sampleCost prices one Draw of the plan's sampling strategy (the c_SP term
// of Equations 8-9).
func (m *Model) sampleCost(plan gd.Plan) cluster.Seconds {
	b := float64(plan.BatchSize)
	switch plan.Sampling {
	case gd.Bernoulli:
		// Full scan with a per-unit coin flip.
		return m.CIO(true) + m.CCPU(m.Cfg.UnitOverheadSec)
	case gd.RandomPartition:
		// b random accesses: each a seek plus the pages covering one unit.
		pages := math.Ceil(m.Stats.AvgUnitBytes / float64(m.Stats.PageBytes))
		per := m.Cfg.SeekSec + cluster.Seconds(pages)*m.pageIO(true)
		return cluster.Seconds(b) * per
	case gd.ShuffledPartition:
		// Amortized refill (partition read + shuffle pass) every k draws,
		// plus sequential pages for the served units.
		k := float64(m.Stats.UnitsPerPart)
		if k == 0 {
			k = 1
		}
		pagesPerPart := float64((m.Stats.PartBytes + m.Stats.PageBytes - 1) / m.Stats.PageBytes)
		refill := m.Cfg.SeekSec + cluster.Seconds(pagesPerPart)*m.pageIO(true) +
			cluster.Seconds(k)*(m.Cfg.FlopSec+m.Cfg.UnitOverheadSec)
		served := math.Ceil(b*m.Stats.AvgUnitBytes/float64(m.Stats.PageBytes)) + 1
		return refill*cluster.Seconds(b/k) + cluster.Seconds(served)*m.Cfg.MemPageSec
	default:
		return 0
	}
}

// batchCost prices transform (if lazy) + compute + aggregation for a sampled
// batch, honoring the Appendix D placement rule.
func (m *Model) batchCost(plan gd.Plan, ops float64, accDim int, batched, fast bool) cluster.Seconds {
	b := float64(plan.BatchSize)
	batchBytes := int64(b * m.Stats.AvgUnitBytes)
	var c cluster.Seconds
	perUnit := m.computePerUnit(ops, batched, fast)
	if plan.Transform == gd.Lazy {
		perUnit += m.parsePerUnit()
	}
	distributed := batchBytes > m.Stats.PartBytes
	switch plan.Mode {
	case gd.CentralizedMode:
		distributed = false
	case gd.DistributedMode:
		distributed = true
	}
	if distributed {
		// Tasks grouped by partition; at most cap run in parallel. The
		// batch spreads over min(b, p(D)) partitions.
		parts := math.Min(b, float64(m.Stats.Partitions))
		waves := math.Ceil(parts / float64(m.Cfg.Cap()))
		unitsPerTask := b / parts
		c = cluster.Seconds(waves) * (cluster.Seconds(unitsPerTask)*perUnit + m.Cfg.WaveOverheadSec)
		execs := math.Min(parts, float64(m.Cfg.Executors()))
		c += m.CNT(int64(execs)*int64(accDim)*8, 1)
	} else {
		c = m.CNT(batchBytes, 1) + cluster.Seconds(b)*perUnit
	}
	return c
}

// String renders a breakdown for reports.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s: stage=%.3gs transform=%.3gs iter=%.3gs init=%.3gs",
		b.Plan, float64(b.Stage), float64(b.Transform), float64(b.Iteration), float64(b.JobInit))
}
