package costmodel

import (
	"math"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func fixture(t *testing.T, n int) (*storage.Store, cluster.Config, gd.Params) {
	t.Helper()
	spec, err := synth.ByName("covtype", 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.N = n
	ds := synth.MustGenerate(spec)
	st, err := storage.Build(ds, storage.Layout{PartitionBytes: 64 << 10, PageBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Default()
	cfg.JitterFrac = 0
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-9, MaxIter: 50, Lambda: 0.01}
	return st, cfg, p
}

func TestStatsOf(t *testing.T) {
	st, cfg, _ := fixture(t, 2000)
	s := StatsOf(st, cfg)
	if s.N != 2000 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Partitions != st.NumPartitions() || s.UnitsPerPart != st.UnitsPerPartition() {
		t.Fatal("partition stats diverge from store")
	}
	if s.AvgUnitBytes <= 0 || s.AvgNNZ <= 0 {
		t.Fatalf("averages not populated: %+v", s)
	}
	if !s.FitsInCache {
		t.Fatal("small dataset reported as not fitting cache")
	}
}

// TestModelTracksEngineBGD is the Figure 7(a) property: the analytic per-plan
// cost must track the simulated execution within a modest relative error.
func TestModelTracksEngineBGD(t *testing.T) {
	st, cfg, p := fixture(t, 4000)
	plan := gd.NewBGD(p)
	plan.Looper = gd.FixedIterLooper{}

	sim := cluster.New(cfg)
	res, err := engine.Run(sim, st, &plan, engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, cfg)
	est := m.PlanCost(plan, res.Iterations)
	rel := math.Abs(float64(est-res.Time)) / float64(res.Time)
	if rel > 0.25 {
		t.Fatalf("BGD model estimate %.3fs vs actual %.3fs (%.0f%% off)", est, res.Time, rel*100)
	}
}

func TestModelTracksEngineSampledPlans(t *testing.T) {
	st, cfg, p := fixture(t, 4000)
	for _, mk := range []struct {
		name string
		plan gd.Plan
	}{
		{"SGD-eager-shuffle", gd.NewSGD(p, gd.Eager, gd.ShuffledPartition)},
		{"SGD-lazy-shuffle", gd.NewSGD(p, gd.Lazy, gd.ShuffledPartition)},
		{"MGD-eager-bernoulli", gd.NewMGD(p, gd.Eager, gd.Bernoulli)},
		{"MGD-eager-random", gd.NewMGD(p, gd.Eager, gd.RandomPartition)},
	} {
		plan := mk.plan
		plan.Looper = gd.FixedIterLooper{}
		plan.MaxIter = 60
		sim := cluster.New(cfg)
		res, err := engine.Run(sim, st, &plan, engine.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		m := New(st, cfg)
		est := m.PlanCost(plan, res.Iterations)
		rel := math.Abs(float64(est-res.Time)) / float64(res.Time)
		if rel > 0.45 {
			t.Errorf("%s: estimate %.3fs vs actual %.3fs (%.0f%% off)", mk.name, est, res.Time, rel*100)
		}
	}
}

func TestPlanCostIncreasesWithIterations(t *testing.T) {
	st, cfg, p := fixture(t, 2000)
	m := New(st, cfg)
	plan := gd.NewBGD(p)
	c10 := m.PlanCost(plan, 10)
	c100 := m.PlanCost(plan, 100)
	if c100 <= c10 {
		t.Fatalf("cost not increasing in T: %g vs %g", c10, c100)
	}
	// Linear in T: the increment per iteration is constant.
	c1000 := m.PlanCost(plan, 1000)
	slope1 := float64(c100-c10) / 90
	slope2 := float64(c1000-c100) / 900
	if math.Abs(slope1-slope2) > 1e-9*math.Abs(slope1) {
		t.Fatalf("cost not affine in T: slopes %g vs %g", slope1, slope2)
	}
}

func TestBernoulliIterationCostsMoreThanShuffled(t *testing.T) {
	// On a multi-partition dataset, Bernoulli's full scan per iteration must
	// dominate shuffled-partition's sequential draws (Section 6's premise).
	st, cfg, p := fixture(t, 8000)
	m := New(st, cfg)
	bern := m.Breakdown(gd.NewMGD(p, gd.Eager, gd.Bernoulli))
	shuf := m.Breakdown(gd.NewMGD(p, gd.Eager, gd.ShuffledPartition))
	if bern.Iteration <= shuf.Iteration {
		t.Fatalf("bernoulli iter %.4fs <= shuffled iter %.4fs", bern.Iteration, shuf.Iteration)
	}
}

func TestLazySkipsUpfrontTransform(t *testing.T) {
	st, cfg, p := fixture(t, 4000)
	m := New(st, cfg)
	eager := m.Breakdown(gd.NewSGD(p, gd.Eager, gd.ShuffledPartition))
	lazy := m.Breakdown(gd.NewSGD(p, gd.Lazy, gd.ShuffledPartition))
	if eager.Transform <= 0 {
		t.Fatal("eager plan has no upfront transform cost")
	}
	if lazy.Transform != 0 {
		t.Fatalf("lazy plan charged upfront transform %.4fs", lazy.Transform)
	}
	if lazy.Iteration <= eager.Iteration {
		t.Fatal("lazy iteration should pay per-draw parse and cost more per iteration")
	}
	// For few iterations lazy wins overall; for many, eager does.
	if lazy.Total(1) >= eager.Total(1) {
		t.Fatal("lazy not cheaper at T=1")
	}
	if lazy.Total(1_000_000) <= eager.Total(1_000_000) {
		t.Fatal("eager not cheaper at huge T")
	}
}

func TestCacheMissRaisesIterationCost(t *testing.T) {
	st, _, p := fixture(t, 8000)
	warm := cluster.Default()
	warm.JitterFrac = 0
	cold := warm
	cold.CacheBytes = 0

	mWarm := New(st, warm)
	mCold := New(st, cold)
	planBGD := gd.NewBGD(p)
	if mCold.Breakdown(planBGD).Iteration <= mWarm.Breakdown(planBGD).Iteration {
		t.Fatal("cache miss did not raise BGD per-iteration cost")
	}
}

func TestCNT(t *testing.T) {
	st, cfg, _ := fixture(t, 1000)
	m := New(st, cfg)
	if m.CNT(0, 1) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
	one := m.CNT(1<<20, 1)
	three := m.CNT(1<<20, 3)
	if three <= one {
		t.Fatal("more rounds must cost more latency")
	}
}

func TestBreakdownString(t *testing.T) {
	st, cfg, p := fixture(t, 1000)
	m := New(st, cfg)
	s := m.Breakdown(gd.NewBGD(p)).String()
	if s == "" {
		t.Fatal("empty breakdown string")
	}
}
