// Package baselines implements the comparison systems of the paper's
// Section 8 on the same simulated cluster ML4all runs on, so that the
// Figure 9-12 comparisons measure physical-plan differences, not simulator
// differences. Each baseline executes the same real numerics through the
// engine but with the physical behaviour the paper attributes to it:
//
//   - MLlib: always eager, Bernoulli sampling only, tree-aggregation with
//     extra network rounds, JVM-boxed caching that inflates the in-memory
//     footprint, and per-iteration job-scheduling overhead.
//   - SystemML: an upfront binary-block conversion, a fast local mode for
//     small inputs, cheaper per-record CPU on its binary format, and
//     out-of-memory failures on large dense data.
//   - Bismarck (the UDA abstraction of Feng et al.): parallel Prepare but a
//     fused, serialized Compute+Update, with the failure modes the paper
//     reports for large models and cardinalities.
package baselines

import (
	"errors"
	"fmt"
	"math"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// ErrOutOfMemory marks a baseline aborting the way the paper reports
// (SystemML on dense data, Bismarck on large models/cardinalities).
var ErrOutOfMemory = errors.New("baselines: out of memory")

// Result wraps an engine result with baseline-specific accounting.
type Result struct {
	*engine.Result
	System string
	// Conversion is SystemML's binary-format conversion time (zero for the
	// other systems); it is included in Time.
	Conversion cluster.Seconds
}

// Options configures a baseline run.
type Options struct {
	Layout storage.Layout // zero value => storage.DefaultLayout()
	Seed   int64
	// Workers sizes the engine's worker pool (0 = GOMAXPROCS, 1 = serial);
	// it changes wall-clock speed only, never the baseline's numbers.
	Workers int
}

func (o Options) layout() storage.Layout {
	if o.Layout.PartitionBytes == 0 {
		return storage.DefaultLayout()
	}
	return o.Layout
}

// planFor builds the baseline-shaped plan for one GD algorithm.
func planFor(p gd.Params, algo gd.Algo, tp gd.TransformPlacement, sk gd.SamplingKind) (gd.Plan, error) {
	switch algo {
	case gd.BGD:
		return gd.NewBGD(p), nil
	case gd.SGD:
		return gd.NewSGD(p, tp, sk), nil
	case gd.MGD:
		return gd.NewMGD(p, tp, sk), nil
	default:
		return gd.Plan{}, fmt.Errorf("baselines: unsupported algorithm %v", algo)
	}
}

// --- MLlib ---

// MLlibConfig captures the physical behaviours the paper attributes to MLlib.
type MLlibConfig struct {
	// FootprintFactor inflates cached bytes: MLlib caches an RDD of boxed
	// vectors, not raw text, so datasets stop fitting in cache earlier.
	FootprintFactor float64
	// IterOverheadSec is the per-iteration job scheduling cost of running
	// every iteration as its own Spark job.
	IterOverheadSec cluster.Seconds
}

// DefaultMLlib returns the calibrated MLlib behaviour constants.
func DefaultMLlib() MLlibConfig {
	return MLlibConfig{FootprintFactor: 5, IterOverheadSec: 0.02}
}

// RunMLlib trains with the MLlib-shaped plan: eager transformation and
// Bernoulli sampling (its only sampling mechanism), tree aggregation.
func RunMLlib(cfg cluster.Config, ds *data.Dataset, p gd.Params, algo gd.Algo, mc MLlibConfig, opts Options) (*Result, error) {
	sk := gd.Bernoulli
	if algo == gd.BGD {
		sk = gd.NoSampling
	}
	plan, err := planFor(p, algo, gd.Eager, sk)
	if err != nil {
		return nil, err
	}
	// MLlib is Spark-only: no hybrid centralized mode even for tiny inputs.
	plan.Mode = gd.DistributedMode

	// The boxed-object footprint shows up as a smaller effective cache.
	mcfg := cfg
	if mc.FootprintFactor > 1 {
		mcfg.CacheBytes = int64(float64(cfg.CacheBytes) / mc.FootprintFactor)
	}
	sim := cluster.New(mcfg)
	st, err := storage.Build(ds, opts.layout())
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(sim, st, &plan, engine.Options{Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}

	// treeAggregate: ceil(log2(executors)) rounds instead of one, plus the
	// per-iteration job overhead.
	extraRounds := int(math.Ceil(math.Log2(float64(cfg.Executors()))))
	if extraRounds < 1 {
		extraRounds = 1
	}
	perIter := cluster.Seconds(extraRounds-1)*cfg.PacketLatencySec + mc.IterOverheadSec
	extra := cluster.Seconds(res.Iterations) * perIter
	sim.Advance(extra)
	res.Time += extra
	return &Result{Result: res, System: "MLlib"}, nil
}

// --- SystemML ---

// SystemMLConfig captures SystemML's behaviour constants.
type SystemMLConfig struct {
	// BinaryByteFactor scales data bytes after conversion to binary blocks.
	BinaryByteFactor float64
	// BinaryCPUFactor scales per-record CPU on the binary format.
	BinaryCPUFactor float64
	// LocalBytes is the input size up to which the hybrid runtime executes
	// locally (fast for small data, the paper's observation on adult,
	// covtype, yearpred).
	LocalBytes int64
	// OOMDenseBytes is the dense-dataset size at which distributed runs die
	// with out-of-memory, as the paper saw for svm1-svm3 and higgs.
	OOMDenseBytes int64
	// DenseThreshold is the density above which a dataset counts as dense.
	DenseThreshold float64
}

// DefaultSystemML returns the calibrated SystemML behaviour constants for
// the 1/64-scale cluster.
func DefaultSystemML() SystemMLConfig {
	return SystemMLConfig{
		BinaryByteFactor: 0.6,
		BinaryCPUFactor:  0.5,
		LocalBytes:       6 << 20,
		OOMDenseBytes:    12 << 20,
		DenseThreshold:   0.9,
	}
}

// RunSystemML converts the input to binary blocks (charged upfront, reported
// separately), then trains the scripted GD with hybrid local/distributed
// execution. Large dense inputs fail with ErrOutOfMemory.
func RunSystemML(cfg cluster.Config, ds *data.Dataset, p gd.Params, algo gd.Algo, sc SystemMLConfig, opts Options) (*Result, error) {
	if ds.Density >= sc.DenseThreshold && ds.SizeBytes() > sc.OOMDenseBytes {
		return nil, fmt.Errorf("systemml on %s (%d dense bytes): %w", ds.Name, ds.SizeBytes(), ErrOutOfMemory)
	}
	sk := gd.Bernoulli
	if algo == gd.BGD {
		sk = gd.NoSampling
	}
	plan, err := planFor(p, algo, gd.Eager, sk)
	if err != nil {
		return nil, err
	}

	scfg := cfg
	scfg.FlopSec = cluster.Seconds(float64(cfg.FlopSec) * sc.BinaryCPUFactor)
	scfg.UnitOverheadSec = cluster.Seconds(float64(cfg.UnitOverheadSec) * sc.BinaryCPUFactor)
	local := ds.SizeBytes() <= sc.LocalBytes
	if local {
		scfg.WaveOverheadSec = 0
		scfg.JobInitSec = 0.5 // local JVM launch, not a Spark job
	}
	sim := cluster.New(scfg)

	st, err := storage.Build(ds, opts.layout())
	if err != nil {
		return nil, err
	}

	// Binary-block conversion: read everything, parse, write back binary.
	convStart := sim.Now()
	costs := make([]cluster.Seconds, 0, st.NumPartitions())
	for _, part := range st.Partitions {
		c := sim.CostReadPartition(part, st.Layout)
		c += sim.CostParse(part.Units(), part.Bytes)
		writePages := (int64(float64(part.Bytes)*sc.BinaryByteFactor) + st.Layout.PageBytes - 1) / st.Layout.PageBytes
		c += cluster.Seconds(writePages) * scfg.DiskPageSec
		costs = append(costs, c)
	}
	if local {
		var sum cluster.Seconds
		for _, c := range costs {
			sum += c
		}
		sim.RunLocal(sum)
	} else {
		sim.RunWaves(costs)
	}
	conversion := sim.Now() - convStart

	if local {
		plan.Mode = gd.CentralizedMode
	}
	res, err := engine.Run(sim, st, &plan, engine.Options{Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	res.Time += conversion
	return &Result{Result: res, System: "SystemML", Conversion: conversion}, nil
}

// --- Bismarck ---

// BismarckConfig captures the UDA abstraction's constraints.
type BismarckConfig struct {
	// NodeBytes is how much iteration input the single aggregation node can
	// hold; BGD over datasets beyond it fails (the svm1/rcv1 BGD failures).
	NodeBytes int64
	// FeatureWork caps batch×features; beyond it the fused serialized
	// aggregate dies (the rcv1 MGD(10k) failure).
	FeatureWork float64
}

// DefaultBismarck returns the calibrated Bismarck constraint constants.
func DefaultBismarck() BismarckConfig {
	return BismarckConfig{NodeBytes: 6 << 20, FeatureWork: 5e6}
}

// RunBismarck trains through the Bismarck abstraction: Prepare (transform)
// parallelizes, but the fused Compute+Update is serialized on one node, so
// gradient computation never distributes.
func RunBismarck(cfg cluster.Config, ds *data.Dataset, p gd.Params, algo gd.Algo, bc BismarckConfig, opts Options) (*Result, error) {
	sk := gd.ShuffledPartition // Bismarck's in-RDBMS scan order is closest to this
	if algo == gd.BGD {
		sk = gd.NoSampling
	}
	plan, err := planFor(p, algo, gd.Eager, sk)
	if err != nil {
		return nil, err
	}

	// BGD materializes the whole dataset on the single aggregation node
	// (the paper's svm1/rcv1 BGD failures: "large number of data points",
	// dataset bytes). Sampled algorithms fail instead when batch × features
	// exceeds the fused serialized aggregate's working set (the rcv1
	// MGD(10k) failure: "large number of features").
	if algo == gd.BGD {
		if b := ds.SizeBytes(); b > bc.NodeBytes {
			return nil, fmt.Errorf("bismarck %s on %s (%d dataset bytes on one node): %w", algo, ds.Name, b, ErrOutOfMemory)
		}
		if float64(ds.N())*float64(ds.NumFeatures) > bc.FeatureWork*50 {
			return nil, fmt.Errorf("bismarck %s on %s (%d×%d work): %w", algo, ds.Name, ds.N(), ds.NumFeatures, ErrOutOfMemory)
		}
	} else if float64(plan.BatchSize)*float64(ds.NumFeatures) > bc.FeatureWork {
		return nil, fmt.Errorf("bismarck %s on %s (batch %d × %d features): %w", algo, ds.Name, plan.BatchSize, ds.NumFeatures, ErrOutOfMemory)
	}

	plan.Mode = gd.CentralizedMode   // fused Compute+Update: one node
	plan.TransformMode = gd.AutoMode // Prepare parallelizes normally
	if ds.SizeBytes() > opts.layout().PartitionBytes {
		plan.TransformMode = gd.DistributedMode
	}

	sim := cluster.New(cfg)
	st, err := storage.Build(ds, opts.layout())
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(sim, st, &plan, engine.Options{Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, System: "Bismarck"}, nil
}
