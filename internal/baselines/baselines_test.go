package baselines

import (
	"errors"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

// buildStore and runEngine mirror what the public facade does, giving the
// baseline comparisons an ML4all-side reference run.
func buildStore(ds *data.Dataset, opts Options) (*storage.Store, error) {
	return storage.Build(ds, opts.layout())
}

func runEngine(sim *cluster.Sim, st *storage.Store, plan *gd.Plan, seed int64) (*engine.Result, error) {
	return engine.Run(sim, st, plan, engine.Options{Seed: seed})
}

func smallDS(t *testing.T, name string, n int) *data.Dataset {
	t.Helper()
	spec, err := synth.ByName(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		spec.N = n
	}
	return synth.MustGenerate(spec)
}

func params(ds *data.Dataset) gd.Params {
	return gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 30}
}

func TestMLlibRunsAllAlgorithms(t *testing.T) {
	ds := smallDS(t, "covtype", 2000)
	for _, algo := range []gd.Algo{gd.BGD, gd.MGD, gd.SGD} {
		res, err := RunMLlib(cluster.Default(), ds, params(ds), algo, DefaultMLlib(), Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.System != "MLlib" || res.Iterations == 0 {
			t.Fatalf("%v: %+v", algo, res)
		}
	}
}

func TestMLlibSlowerThanCentralizedOnTinyData(t *testing.T) {
	// On single-partition data ML4all runs centralized; MLlib is always
	// distributed with per-iteration job overhead, so it must be slower for
	// the same iteration count (the Figure 9 covtype/adult gap).
	ds := smallDS(t, "adult", 0)
	p := params(ds)
	p.MaxIter = 50
	p.Tolerance = 1e-12

	ml, err := RunMLlib(cluster.Default(), ds, p, gd.BGD, DefaultMLlib(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// ML4all equivalent through the same engine: the default BGD plan.
	plan := gd.NewBGD(p)
	sim := cluster.New(cluster.Default())
	st, err := buildStore(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runEngine(sim, st, &plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Time <= res.Time {
		t.Fatalf("MLlib %.2fs not slower than ML4all %.2fs on single-partition data", ml.Time, res.Time)
	}
}

func TestSystemMLConversionChargedAndReported(t *testing.T) {
	ds := smallDS(t, "covtype", 2000)
	res, err := RunSystemML(cluster.Default(), ds, params(ds), gd.BGD, DefaultSystemML(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conversion <= 0 {
		t.Fatal("conversion time missing")
	}
	if res.Time <= res.Conversion {
		t.Fatal("total time does not include training beyond conversion")
	}
}

func TestSystemMLOOMOnLargeDenseData(t *testing.T) {
	ds := smallDS(t, "svm1", 0) // dense, above the OOM threshold
	_, err := RunSystemML(cluster.Default(), ds, params(ds), gd.BGD, DefaultSystemML(), Options{Seed: 1})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestSystemMLRunsSparseLargeData(t *testing.T) {
	ds := smallDS(t, "rcv1", 3000) // sparse: no dense OOM
	if _, err := RunSystemML(cluster.Default(), ds, params(ds), gd.SGD, DefaultSystemML(), Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestBismarckFailureModes(t *testing.T) {
	cfg := cluster.Default()
	bc := DefaultBismarck()

	// rcv1 BGD: dataset bytes exceed the single aggregation node.
	rcv1 := smallDS(t, "rcv1", 0)
	if _, err := RunBismarck(cfg, rcv1, params(rcv1), gd.BGD, bc, Options{Seed: 1}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("rcv1 BGD err = %v, want OOM (paper Figure 11b)", err)
	}

	// rcv1 MGD(10k): batch×features beyond the fused-aggregate budget.
	p := params(rcv1)
	p.BatchSize = 10000
	if _, err := RunBismarck(cfg, rcv1, p, gd.MGD, bc, Options{Seed: 1}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("rcv1 MGD(10k) err = %v, want OOM", err)
	}

	// rcv1 MGD(1k) runs (paper shows Bismarck completing it).
	p.BatchSize = 1000
	p.MaxIter = 10
	if _, err := RunBismarck(cfg, rcv1, p, gd.MGD, bc, Options{Seed: 1}); err != nil {
		t.Fatalf("rcv1 MGD(1k) failed: %v", err)
	}

	// svm1 BGD: too many data points for the serialized aggregate.
	svm1 := smallDS(t, "svm1", 0)
	if _, err := RunBismarck(cfg, svm1, params(svm1), gd.BGD, bc, Options{Seed: 1}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("svm1 BGD err = %v, want OOM", err)
	}
}

func TestBismarckSerializationCostsOnLargeBatches(t *testing.T) {
	// MGD(10k) on dense data: ML4all distributes the gradient computation,
	// Bismarck serializes it; Bismarck must be slower (Figure 11c).
	ds := smallDS(t, "svm1", 8000)
	p := params(ds)
	p.BatchSize = 10000
	p.MaxIter = 10
	p.Tolerance = 1e-12

	bis, err := RunBismarck(cluster.Default(), ds, p, gd.MGD, DefaultBismarck(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	plan := gd.NewMGD(p, gd.Eager, gd.ShuffledPartition)
	sim := cluster.New(cluster.Default())
	st, err := buildStore(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runEngine(sim, st, &plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bis.Time <= res.Time {
		t.Fatalf("Bismarck MGD(10k) %.2fs not slower than ML4all %.2fs", bis.Time, res.Time)
	}
}

func TestMLlibThrashesWhenFootprintExceedsCache(t *testing.T) {
	// A dataset fitting raw but not at the boxed footprint must be much
	// slower under MLlib than the raw engine run (Figure 9/10 regime).
	ds := smallDS(t, "higgs", 15000) // ~3 MB raw
	cfg := cluster.Default()
	cfg.CacheBytes = 4 << 20 // fits raw, not 5x boxed
	p := params(ds)
	p.MaxIter = 15
	p.Tolerance = 1e-12

	ml, err := RunMLlib(cfg, ds, p, gd.BGD, DefaultMLlib(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := gd.NewBGD(p)
	sim := cluster.New(cfg)
	st, err := buildStore(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runEngine(sim, st, &plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(ml.Time) < 2*float64(res.Time) {
		t.Fatalf("MLlib with thrashing cache %.2fs vs ML4all %.2fs: expected >= 2x", ml.Time, res.Time)
	}
}
