module ml4all

go 1.24
