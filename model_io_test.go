package ml4all

// SaveModel/LoadModel round-trip coverage: the model registry persists every
// published version through this pair, so weights must survive bit-exactly
// (dense-trained and sparse-trained models alike), the header metadata must
// round-trip for every task kind, and corrupted files must fail loudly
// instead of producing a silently wrong model.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func TestModelRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
	}{
		{
			// Dense-trained shape: every coordinate populated, including
			// values that stress %.17g round-tripping.
			name: "dense-svm",
			m: &Model{
				Name: "dense", Task: data.TaskSVM, PlanName: "BGD(eager)",
				Weights:    linalg.Vector{0.1, -2.5e-17, 1.0 / 3.0, 4e300, -0.0, 7},
				Iterations: 123, TrainTime: 45.675, Converged: true,
			},
		},
		{
			// Sparse-trained shape: mostly-zero weights, as high-dimensional
			// LIBSVM datasets produce.
			name: "sparse-logr",
			m: &Model{
				Name: "sparse", Task: data.TaskLogisticRegression, PlanName: "MGD(lazy,bernoulli)",
				Weights:    linalg.Vector{0, 0, 1e-9, 0, 0, 0, -3.25, 0, 0, 0.5},
				Iterations: 7, TrainTime: 0, Converged: false,
			},
		},
		{
			name: "linr",
			m: &Model{
				Name: "reg", Task: data.TaskLinearRegression, PlanName: "SGD(eager,random)",
				Weights:    linalg.Vector{1.5},
				Iterations: 9999, TrainTime: 1e-3, Converged: true,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "m.model")
			if err := SaveModel(path, tc.m); err != nil {
				t.Fatal(err)
			}
			got, err := LoadModel(path)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Weights.Equal(tc.m.Weights, 0) {
				t.Fatalf("weights differ:\n got %v\nwant %v", got.Weights, tc.m.Weights)
			}
			if got.Task != tc.m.Task {
				t.Fatalf("task %v != %v", got.Task, tc.m.Task)
			}
			if got.PlanName != tc.m.PlanName {
				t.Fatalf("plan %q != %q", got.PlanName, tc.m.PlanName)
			}
			if got.Iterations != tc.m.Iterations {
				t.Fatalf("iterations %d != %d", got.Iterations, tc.m.Iterations)
			}
			if got.Converged != tc.m.Converged {
				t.Fatalf("converged %v != %v", got.Converged, tc.m.Converged)
			}
			if got.TrainTime != tc.m.TrainTime {
				t.Fatalf("traintime %v != %v", got.TrainTime, tc.m.TrainTime)
			}
		})
	}
}

func TestLoadModelCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"bad-weight", "# ml4all model x task=SVM\n0.5\nnot-a-number\n", "bad weight"},
		{"empty", "", "no weights"},
		{"header-only", "# ml4all model x task=SVM plan=BGD iterations=3\n", "no weights"},
		{"bad-iterations", "# ml4all model x iterations=many\n1\n", "bad iterations"},
		{"bad-converged", "# ml4all model x converged=perhaps\n1\n", "bad converged"},
		{"bad-traintime", "# ml4all model x traintime=soon\n1\n", "bad traintime"},
		{"unknown-task", "# ml4all model x task=KMeans\n1\n", "unknown task"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadModel(write(tc.name, tc.content))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
	if _, err := LoadModel(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestExecErrorsCarryStatementPosition pins the serving-oriented error
// contract: a failure executing statement k of a script names k and the
// statement's source position, so job-submission failures are actionable.
func TestExecErrorsCarryStatementPosition(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 800)
	sys.RegisterDataset("train.txt", ds)
	script := `Q1 = run classification on train.txt having epsilon 0.05, max iter 40;
persist Qmissing on out.model;`
	outs, err := sys.Exec(script)
	if err == nil {
		t.Fatal("want an error from the bad persist")
	}
	if len(outs) != 1 {
		t.Fatalf("the first statement should have executed, got %d outputs", len(outs))
	}
	msg := err.Error()
	if !strings.Contains(msg, "statement 2 at 2:1") {
		t.Fatalf("error lacks statement index/position: %q", msg)
	}
	if !strings.Contains(msg, "Qmissing") {
		t.Fatalf("error lost its cause: %q", msg)
	}
}
